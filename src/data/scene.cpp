#include "data/scene.hpp"

#include <algorithm>
#include <cmath>

#include "data/terrain.hpp"
#include "util/rng.hpp"

namespace mmir {

std::string_view land_cover_name(LandCover c) {
  switch (c) {
    case LandCover::kWater: return "water";
    case LandCover::kForest: return "forest";
    case LandCover::kGrass: return "grass";
    case LandCover::kBush: return "bush";
    case LandCover::kBare: return "bare";
    case LandCover::kHouse: return "house";
  }
  throw Error("land_cover_name: unknown class");
}

const Grid& Scene::band(std::string_view name) const {
  for (std::size_t i = 0; i < band_names.size(); ++i) {
    if (band_names[i] == name) return bands[i];
  }
  throw Error("Scene::band: no band named '" + std::string(name) + "'");
}

namespace {

/// Clamps a band value into the 8-bit TM digital-number range.
double dn(double v) noexcept { return std::clamp(v, 0.0, 255.0); }

}  // namespace

Scene generate_scene(const SceneConfig& config) {
  MMIR_EXPECTS(config.width >= 16 && config.height >= 16);
  Rng rng(config.seed);

  Scene scene;
  scene.width = config.width;
  scene.height = config.height;

  TerrainConfig terrain_cfg;
  terrain_cfg.width = config.width;
  terrain_cfg.height = config.height;
  terrain_cfg.seed = rng.next_u64();
  scene.dem = generate_terrain(terrain_cfg);

  scene.moisture = value_noise(config.width, config.height, 5, rng.next_u64());
  Grid veg_noise = value_noise(config.width, config.height, 5, rng.next_u64());

  // Elevation suppresses vegetation and moisture collects downhill: normalize
  // the DEM to [0,1] and blend.
  Grid elevation01 = scene.dem;
  elevation01.normalize(0.0, 1.0);
  scene.vegetation = Grid(config.width, config.height);
  for (std::size_t y = 0; y < config.height; ++y) {
    for (std::size_t x = 0; x < config.width; ++x) {
      const double e = elevation01.cell(x, y);
      scene.moisture.cell(x, y) =
          std::clamp(scene.moisture.cell(x, y) * (1.15 - 0.6 * e), 0.0, 1.0);
      scene.vegetation.cell(x, y) =
          std::clamp(veg_noise.cell(x, y) * (1.1 - 0.5 * e) * (0.4 + 0.8 * scene.moisture.cell(x, y)),
                     0.0, 1.0);
    }
  }

  // Land cover from the latent fields, plus village seeds for houses.
  scene.landcover = Grid(config.width, config.height, static_cast<double>(LandCover::kBare));
  for (std::size_t y = 0; y < config.height; ++y) {
    for (std::size_t x = 0; x < config.width; ++x) {
      const double m = scene.moisture.cell(x, y);
      const double v = scene.vegetation.cell(x, y);
      const double e = elevation01.cell(x, y);
      LandCover cover = LandCover::kBare;
      if (m > 0.82 && e < 0.35) {
        cover = LandCover::kWater;
      } else if (v > 0.62) {
        cover = LandCover::kForest;
      } else if (v > 0.38) {
        cover = LandCover::kBush;
      } else if (v > 0.18) {
        cover = LandCover::kGrass;
      }
      scene.landcover.cell(x, y) = static_cast<double>(cover);
    }
  }

  // Villages: Gaussian blobs of houses on non-water cells.
  struct Village {
    double cx, cy, radius;
  };
  std::vector<Village> villages;
  villages.reserve(config.villages);
  for (std::size_t v = 0; v < config.villages; ++v) {
    villages.push_back(Village{rng.uniform(0.1, 0.9) * static_cast<double>(config.width),
                               rng.uniform(0.1, 0.9) * static_cast<double>(config.height),
                               rng.uniform(0.02, 0.05) * static_cast<double>(config.width)});
  }
  for (const auto& village : villages) {
    const long r = static_cast<long>(std::ceil(village.radius * 2.5));
    for (long dy = -r; dy <= r; ++dy) {
      for (long dx = -r; dx <= r; ++dx) {
        const long x = static_cast<long>(village.cx) + dx;
        const long y = static_cast<long>(village.cy) + dy;
        if (x < 0 || y < 0 || x >= static_cast<long>(config.width) ||
            y >= static_cast<long>(config.height))
          continue;
        const double d2 = (static_cast<double>(dx) * dx + static_cast<double>(dy) * dy) /
                          (village.radius * village.radius);
        const double p = config.house_density * std::exp(-d2);
        const auto ux = static_cast<std::size_t>(x);
        const auto uy = static_cast<std::size_t>(y);
        if (scene.landcover.cell(ux, uy) != static_cast<double>(LandCover::kWater) &&
            rng.bernoulli(p)) {
          scene.landcover.cell(ux, uy) = static_cast<double>(LandCover::kHouse);
        }
      }
    }
  }

  // Spectral bands.  Response model (coarse TM physics):
  //   b4 (near-IR)  : strong vegetation reflectance, dark water
  //   b5 (SWIR-1)   : decreases with soil/vegetation moisture
  //   b7 (SWIR-2)   : bare soil / geology bright, moisture dark
  Grid b4(config.width, config.height);
  Grid b5(config.width, config.height);
  Grid b7(config.width, config.height);
  for (std::size_t y = 0; y < config.height; ++y) {
    for (std::size_t x = 0; x < config.width; ++x) {
      const double m = scene.moisture.cell(x, y);
      const double v = scene.vegetation.cell(x, y);
      const bool water = scene.landcover.cell(x, y) == static_cast<double>(LandCover::kWater);
      const double noise4 = rng.normal(0.0, 4.0);
      const double noise5 = rng.normal(0.0, 4.0);
      const double noise7 = rng.normal(0.0, 4.0);
      if (water) {
        b4.cell(x, y) = dn(15.0 + noise4);
        b5.cell(x, y) = dn(8.0 + noise5);
        b7.cell(x, y) = dn(5.0 + noise7);
      } else {
        b4.cell(x, y) = dn(40.0 + 170.0 * v + noise4);
        b5.cell(x, y) = dn(190.0 - 130.0 * m - 30.0 * v + noise5);
        b7.cell(x, y) = dn(150.0 - 90.0 * m - 60.0 * v + noise7);
      }
    }
  }
  scene.bands.push_back(std::move(b4));
  scene.band_names.emplace_back("b4");
  scene.bands.push_back(std::move(b5));
  scene.band_names.emplace_back("b5");
  scene.bands.push_back(std::move(b7));
  scene.band_names.emplace_back("b7");

  // Population density: exponential falloff around villages over a small
  // rural background — the §4.1 importance weight w(x,y).
  scene.population = Grid(config.width, config.height, 0.5);
  for (std::size_t y = 0; y < config.height; ++y) {
    for (std::size_t x = 0; x < config.width; ++x) {
      double density = 0.5;
      for (const auto& village : villages) {
        const double dx = static_cast<double>(x) - village.cx;
        const double dy = static_cast<double>(y) - village.cy;
        const double d = std::sqrt(dx * dx + dy * dy);
        density += 40.0 * std::exp(-d / (village.radius * 1.5));
      }
      scene.population.cell(x, y) = density;
    }
  }

  return scene;
}

}  // namespace mmir
