#include "data/scene_series.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace mmir {

SceneSeries generate_scene_series(const Scene& base, const WeatherSeries& weather,
                                  const SceneSeriesConfig& config) {
  MMIR_EXPECTS(config.frame_count >= 1);
  MMIR_EXPECTS(config.days_per_frame >= 1);
  MMIR_EXPECTS(weather.size() >= config.frame_count * config.days_per_frame);
  Rng rng(config.seed);

  SceneSeries series;
  series.width = base.width;
  series.height = base.height;
  series.band_names = {"b4", "b5", "b7"};

  // Per-frame wetness index: trailing-rain fraction of wet days, normalized.
  std::vector<double> wetness(config.frame_count, 0.0);
  for (std::size_t f = 0; f < config.frame_count; ++f) {
    std::size_t wet_days = 0;
    for (std::size_t d = 0; d < config.days_per_frame; ++d) {
      wet_days += weather[f * config.days_per_frame + d].rained() ? 1 : 0;
    }
    wetness[f] = static_cast<double>(wet_days) / static_cast<double>(config.days_per_frame);
  }

  const Grid& b4 = base.band("b4");
  const Grid& b5 = base.band("b5");
  const Grid& b7 = base.band("b7");
  series.frames.reserve(config.frame_count);
  for (std::size_t f = 0; f < config.frame_count; ++f) {
    SceneFrame frame;
    frame.wetness = wetness[f];
    // Vegetation responds to *last* frame's rain (growth lag).
    const double veg_pulse = f == 0 ? wetness[0] : wetness[f - 1];
    Grid f4(base.width, base.height);
    Grid f5(base.width, base.height);
    Grid f7(base.width, base.height);
    for (std::size_t y = 0; y < base.height; ++y) {
      for (std::size_t x = 0; x < base.width; ++x) {
        const double veg = base.vegetation.cell(x, y);
        // Vegetated cells green up after rain; wet soil darkens the SWIRs.
        f4.cell(x, y) = std::clamp(
            b4.cell(x, y) * (1.0 + config.vegetation_gain * veg * (veg_pulse - 0.3)) +
                rng.normal(0.0, config.noise_dn),
            0.0, 255.0);
        f5.cell(x, y) = std::clamp(
            b5.cell(x, y) * (1.0 - config.moisture_gain * (frame.wetness - 0.3)) +
                rng.normal(0.0, config.noise_dn),
            0.0, 255.0);
        f7.cell(x, y) = std::clamp(
            b7.cell(x, y) * (1.0 - 0.6 * config.moisture_gain * (frame.wetness - 0.3)) +
                rng.normal(0.0, config.noise_dn),
            0.0, 255.0);
      }
    }
    frame.bands.push_back(std::move(f4));
    frame.bands.push_back(std::move(f5));
    frame.bands.push_back(std::move(f7));
    series.frames.push_back(std::move(frame));
  }
  return series;
}

}  // namespace mmir
