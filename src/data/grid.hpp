#pragma once
// Dense 2-D grid of doubles — the raster primitive for DEMs, spectral bands,
// land-cover maps, risk surfaces and population weights.

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace mmir {

/// Row-major W×H raster of doubles.
class Grid {
 public:
  Grid() = default;
  Grid(std::size_t width, std::size_t height, double fill = 0.0)
      : width_(width), height_(height), cells_(width * height, fill) {
    MMIR_EXPECTS(width > 0 && height > 0);
  }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }

  [[nodiscard]] double& at(std::size_t x, std::size_t y) {
    MMIR_EXPECTS(x < width_ && y < height_);
    return cells_[y * width_ + x];
  }
  [[nodiscard]] double at(std::size_t x, std::size_t y) const {
    MMIR_EXPECTS(x < width_ && y < height_);
    return cells_[y * width_ + x];
  }

  /// Unchecked access for hot loops (callers validate bounds once).
  [[nodiscard]] double& cell(std::size_t x, std::size_t y) noexcept {
    return cells_[y * width_ + x];
  }
  [[nodiscard]] double cell(std::size_t x, std::size_t y) const noexcept {
    return cells_[y * width_ + x];
  }

  [[nodiscard]] std::span<double> flat() noexcept { return cells_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return cells_; }

  /// Clamped neighbourhood read (edge pixels replicate).
  [[nodiscard]] double at_clamped(long x, long y) const noexcept;

  /// Single-pass stats over all cells.
  [[nodiscard]] OnlineStats stats() const noexcept;

  /// Stats over the [x0, x0+w) × [y0, y0+h) window, clipped to the grid.
  [[nodiscard]] OnlineStats window_stats(std::size_t x0, std::size_t y0, std::size_t w,
                                         std::size_t h) const noexcept;

  /// 2× mean-pool downsample; odd trailing rows/columns average what exists.
  [[nodiscard]] Grid downsample2x() const;

  /// Rescales all values linearly onto [lo, hi] (no-op on constant grids).
  void normalize(double lo, double hi) noexcept;

  /// Fraction of cells in the window equal to `label` (for land-cover maps).
  [[nodiscard]] double window_fraction(std::size_t x0, std::size_t y0, std::size_t w,
                                       std::size_t h, double label) const noexcept;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<double> cells_;
};

}  // namespace mmir
