#pragma once
// Fractal terrain synthesis.
//
// The paper's HPS risk model consumes Landsat TM bands plus a digital
// elevation map (DEM).  We have no DEM, so we synthesize one with the
// diamond–square algorithm, which produces the 1/f spatial correlation that
// makes real elevation data compressible — and therefore makes the paper's
// tile-summary and pyramid screening effective, exactly the property the
// reproduction needs (see DESIGN.md §2).

#include <cstdint>

#include "data/grid.hpp"
#include "util/rng.hpp"

namespace mmir {

/// Parameters of the diamond–square generator.
struct TerrainConfig {
  std::size_t width = 256;
  std::size_t height = 256;
  double base_elevation_m = 1500.0;  ///< mean elevation
  double relief_m = 800.0;           ///< initial corner perturbation amplitude
  double roughness = 0.55;           ///< amplitude decay per octave in (0,1)
  std::uint64_t seed = 1;
};

/// Generates a fractal DEM (metres).  Output is width×height even though the
/// algorithm internally runs on the enclosing (2^k+1) square.
[[nodiscard]] Grid generate_terrain(const TerrainConfig& config);

/// Smooth value-noise field in [0,1] with `octaves` levels of detail; used for
/// moisture / vegetation latent fields that drive band synthesis.
[[nodiscard]] Grid value_noise(std::size_t width, std::size_t height, std::size_t octaves,
                               std::uint64_t seed);

}  // namespace mmir
