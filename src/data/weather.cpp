#include "data/weather.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace mmir {

WeatherSeries generate_weather(const WeatherConfig& config, Rng& rng) {
  MMIR_EXPECTS(config.days > 0);
  WeatherSeries series;
  series.reserve(config.days);
  bool wet = rng.bernoulli(0.3);
  double noise = 0.0;
  for (std::size_t day = 0; day < config.days; ++day) {
    const double p_wet = wet ? config.p_wet_given_wet : config.p_wet_given_dry;
    wet = rng.bernoulli(p_wet);
    DailyWeather w;
    w.rain_mm = wet ? rng.exponential(1.0 / config.mean_rain_mm) : 0.0;
    const double phase =
        2.0 * std::numbers::pi * static_cast<double>(day) / 365.0 - std::numbers::pi / 2.0;
    noise = config.temp_ar1 * noise + rng.normal(0.0, config.temp_noise_c);
    w.temp_c = config.temp_mean_c + config.temp_amplitude_c * std::sin(phase) + noise -
               (wet ? 1.5 : 0.0);  // rainy days run slightly cooler
    series.push_back(w);
  }
  return series;
}

WeatherArchive generate_weather_archive(std::size_t regions, const WeatherConfig& base,
                                        std::uint64_t seed) {
  MMIR_EXPECTS(regions > 0);
  WeatherArchive archive;
  archive.regions.reserve(regions);
  Rng master(seed);
  for (std::size_t r = 0; r < regions; ++r) {
    Rng region_rng = master.fork();
    WeatherConfig cfg = base;
    // Regional climate jitter: some regions are wetter, some hotter.
    cfg.p_wet_given_dry = std::clamp(base.p_wet_given_dry + region_rng.normal(0.0, 0.06), 0.02, 0.6);
    cfg.p_wet_given_wet = std::clamp(base.p_wet_given_wet + region_rng.normal(0.0, 0.08), 0.2, 0.92);
    cfg.temp_mean_c = base.temp_mean_c + region_rng.normal(0.0, 3.0);
    archive.regions.push_back(generate_weather(cfg, region_rng));
  }
  return archive;
}

std::size_t longest_dry_spell(const WeatherSeries& series) noexcept {
  std::size_t best = 0;
  std::size_t run = 0;
  for (const auto& day : series) {
    if (day.rained()) {
      run = 0;
    } else {
      ++run;
      best = std::max(best, run);
    }
  }
  return best;
}

}  // namespace mmir
