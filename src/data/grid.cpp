#include "data/grid.hpp"

#include <algorithm>

namespace mmir {

double Grid::at_clamped(long x, long y) const noexcept {
  const long mx = static_cast<long>(width_) - 1;
  const long my = static_cast<long>(height_) - 1;
  x = std::clamp(x, 0L, mx);
  y = std::clamp(y, 0L, my);
  return cells_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)];
}

OnlineStats Grid::stats() const noexcept {
  OnlineStats s;
  for (double v : cells_) s.add(v);
  return s;
}

OnlineStats Grid::window_stats(std::size_t x0, std::size_t y0, std::size_t w,
                               std::size_t h) const noexcept {
  OnlineStats s;
  const std::size_t x1 = std::min(x0 + w, width_);
  const std::size_t y1 = std::min(y0 + h, height_);
  for (std::size_t y = y0; y < y1; ++y)
    for (std::size_t x = x0; x < x1; ++x) s.add(cell(x, y));
  return s;
}

Grid Grid::downsample2x() const {
  const std::size_t nw = (width_ + 1) / 2;
  const std::size_t nh = (height_ + 1) / 2;
  Grid out(nw, nh);
  for (std::size_t y = 0; y < nh; ++y) {
    for (std::size_t x = 0; x < nw; ++x) {
      double sum = 0.0;
      int n = 0;
      for (std::size_t dy = 0; dy < 2; ++dy) {
        for (std::size_t dx = 0; dx < 2; ++dx) {
          const std::size_t sx = 2 * x + dx;
          const std::size_t sy = 2 * y + dy;
          if (sx < width_ && sy < height_) {
            sum += cell(sx, sy);
            ++n;
          }
        }
      }
      out.cell(x, y) = sum / static_cast<double>(n);
    }
  }
  return out;
}

void Grid::normalize(double lo, double hi) noexcept {
  const OnlineStats s = stats();
  const double span = s.max() - s.min();
  if (span <= 0.0) return;
  for (double& v : cells_) v = lo + (hi - lo) * (v - s.min()) / span;
}

double Grid::window_fraction(std::size_t x0, std::size_t y0, std::size_t w, std::size_t h,
                             double label) const noexcept {
  const std::size_t x1 = std::min(x0 + w, width_);
  const std::size_t y1 = std::min(y0 + h, height_);
  std::size_t total = 0;
  std::size_t hits = 0;
  for (std::size_t y = y0; y < y1; ++y) {
    for (std::size_t x = x0; x < x1; ++x) {
      ++total;
      if (cell(x, y) == label) ++hits;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace mmir
