#pragma once
// Ground-truth event synthesis for the §4.1 accuracy metrics.
//
// The paper defines miss / false-alarm probabilities against observed event
// occurrences O(x,y) (disease incident reports).  Those reports are not
// available, so we *generate* occurrences from a known latent risk surface:
// O(x,y) ~ Poisson(rate(risk(x,y))).  Because the generating risk is known,
// Pm, Pf, CT, precision and recall can be evaluated exactly, and a model's
// accuracy degrades in a controlled way as it diverges from the truth.

#include <cstdint>

#include "data/grid.hpp"

namespace mmir {

struct EventConfig {
  /// Fraction of cells (by latent-risk rank) considered truly "high risk";
  /// the Poisson rate ramps up across this top fraction.
  double high_risk_fraction = 0.1;
  /// Expected events per high-risk cell at the very top of the risk range.
  double peak_rate = 3.0;
  /// Background rate everywhere (events can occur in "low risk" cells too —
  /// this is what makes misses/false alarms a genuine tradeoff).
  double background_rate = 0.01;
  std::uint64_t seed = 99;
};

/// Generates an occurrence-count grid O(x,y) from a latent risk surface.
/// Cells above the (1 - high_risk_fraction) risk quantile get a rate that
/// ramps linearly from background_rate to peak_rate; others get background.
[[nodiscard]] Grid generate_events(const Grid& latent_risk, const EventConfig& config);

}  // namespace mmir
