#pragma once
// Temporal scene stacks — the substrate for the paper's time-varying risk
// model (§3.1):  R(x,y,t) = a1·X1(x,y,t) + a2·X2(x,y,t) + a3·X3(x,y,t)
//                          + a4·R(x,y,t-1).
//
// A SceneSeries is a sequence of co-registered band frames derived from a
// base scene, modulated by the regional weather record: trailing rainfall
// wets the soil (darkening the SWIR bands) and pulses vegetation (brightening
// near-IR with a lag), so band dynamics carry the wet-then-dry signal the
// epidemiological models key on.

#include <cstdint>
#include <string>
#include <vector>

#include "data/scene.hpp"
#include "data/weather.hpp"

namespace mmir {

/// One time step of the band stack.
struct SceneFrame {
  std::vector<Grid> bands;  ///< same order/names as SceneSeries::band_names
  double wetness = 0.0;     ///< the frame's trailing-rain index in [0, 1]
};

/// A co-registered temporal stack over a base scene.
struct SceneSeries {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::string> band_names;  ///< "b4", "b5", "b7"
  std::vector<SceneFrame> frames;

  [[nodiscard]] std::size_t frame_count() const noexcept { return frames.size(); }
  [[nodiscard]] std::size_t band_count() const noexcept { return band_names.size(); }
};

struct SceneSeriesConfig {
  std::size_t frame_count = 12;
  std::size_t days_per_frame = 30;  ///< weather days aggregated per frame
  double moisture_gain = 0.5;       ///< SWIR response to the wetness index
  double vegetation_gain = 0.35;    ///< near-IR response (lagged one frame)
  double noise_dn = 2.0;            ///< per-frame sensor noise
  std::uint64_t seed = 77;
};

/// Builds the stack.  `weather` must cover frame_count * days_per_frame days.
[[nodiscard]] SceneSeries generate_scene_series(const Scene& base, const WeatherSeries& weather,
                                                const SceneSeriesConfig& config);

}  // namespace mmir
