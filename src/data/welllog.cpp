#include "data/welllog.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mmir {

std::string_view lithology_name(Lithology l) {
  switch (l) {
    case Lithology::kShale: return "shale";
    case Lithology::kSandstone: return "sandstone";
    case Lithology::kSiltstone: return "siltstone";
    case Lithology::kLimestone: return "limestone";
    case Lithology::kCoal: return "coal";
  }
  throw Error("lithology_name: unknown lithology");
}

double typical_gamma_api(Lithology l) noexcept {
  switch (l) {
    case Lithology::kShale: return 110.0;
    case Lithology::kSandstone: return 35.0;
    case Lithology::kSiltstone: return 70.0;
    case Lithology::kLimestone: return 20.0;
    case Lithology::kCoal: return 45.0;
  }
  return 60.0;
}

double WellLog::total_depth_ft() const noexcept {
  if (layers.empty()) return 0.0;
  const LogLayer& last = layers.back();
  return last.top_ft + last.thickness_ft;
}

long WellLog::layer_at(double depth_ft) const noexcept {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (depth_ft >= layers[i].top_ft && depth_ft < layers[i].top_ft + layers[i].thickness_ft) {
      return static_cast<long>(i);
    }
  }
  return -1;
}

namespace {

/// Transition preference between successive (downward) lithologies.  Fluvial
/// fining-upward packages make shale→sandstone→siltstone successions common,
/// which is exactly the pattern the Fig. 4 riverbed query hunts for.
double succession_weight(Lithology above, Lithology below) noexcept {
  if (above == below) return 0.2;  // discourage duplicate merges
  if (above == Lithology::kShale && below == Lithology::kSandstone) return 3.0;
  if (above == Lithology::kSandstone && below == Lithology::kSiltstone) return 2.5;
  if (above == Lithology::kSiltstone && below == Lithology::kShale) return 1.5;
  if (above == Lithology::kLimestone && below == Lithology::kShale) return 1.2;
  return 1.0;
}

}  // namespace

WellLog generate_well_log(std::size_t id, const WellLogConfig& config, Rng& rng) {
  MMIR_EXPECTS(config.mean_layers >= 3);
  MMIR_EXPECTS(config.sample_interval_ft > 0.0);
  WellLog log;
  log.id = id;
  log.sample_interval_ft = config.sample_interval_ft;

  const std::size_t layer_count =
      std::max<std::size_t>(3, static_cast<std::size_t>(
                                   rng.normal(static_cast<double>(config.mean_layers),
                                              static_cast<double>(config.mean_layers) * 0.25)));
  double depth = 0.0;
  auto current = static_cast<Lithology>(rng.uniform_int(kLithologyClasses));
  for (std::size_t i = 0; i < layer_count; ++i) {
    LogLayer layer;
    layer.lithology = current;
    layer.top_ft = depth;
    layer.thickness_ft = std::max(1.0, rng.exponential(1.0 / config.mean_thickness_ft));
    layer.gamma_api =
        std::max(0.0, rng.normal(typical_gamma_api(current), config.gamma_noise_api));
    depth += layer.thickness_ft;
    log.layers.push_back(layer);

    // Choose the next (deeper) lithology with succession bias.
    std::vector<double> weights(kLithologyClasses, 1.0);
    for (int l = 0; l < kLithologyClasses; ++l) {
      const double w = succession_weight(current, static_cast<Lithology>(l));
      weights[static_cast<std::size_t>(l)] =
          (1.0 - config.succession_bias) + config.succession_bias * w;
    }
    current = static_cast<Lithology>(rng.categorical(weights));
  }

  // Sample the gamma trace from the layer stack with measurement noise.
  const auto samples = static_cast<std::size_t>(depth / config.sample_interval_ft);
  log.gamma_trace.reserve(samples);
  std::size_t layer_idx = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double z = static_cast<double>(s) * config.sample_interval_ft;
    while (layer_idx + 1 < log.layers.size() &&
           z >= log.layers[layer_idx].top_ft + log.layers[layer_idx].thickness_ft) {
      ++layer_idx;
    }
    log.gamma_trace.push_back(
        std::max(0.0, log.layers[layer_idx].gamma_api + rng.normal(0.0, config.gamma_noise_api)));
  }
  return log;
}

WellLogArchive generate_well_log_archive(std::size_t wells, const WellLogConfig& config,
                                         std::uint64_t seed) {
  MMIR_EXPECTS(wells > 0);
  WellLogArchive archive;
  archive.wells.reserve(wells);
  Rng master(seed);
  for (std::size_t w = 0; w < wells; ++w) {
    Rng rng = master.fork();
    archive.wells.push_back(generate_well_log(w, config, rng));
  }
  return archive;
}

}  // namespace mmir
