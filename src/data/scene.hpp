#pragma once
// Synthetic multi-modal scene: the stand-in for the paper's Landsat TM bands,
// DEM, land-cover and demographic (population) layers.
//
// The generator builds latent moisture / vegetation fields with fractal
// spatial correlation, derives spectral bands from them the way TM bands
// respond to vegetation and soil moisture, assigns land-cover classes
// (including the bushes and houses that the HPS knowledge model needs), and
// lays population density around settlements for the §4.1 weights w(x,y).

#include <cstdint>
#include <string>
#include <vector>

#include "data/grid.hpp"

namespace mmir {

/// Land-cover classes stored (as doubles) in Scene::landcover.
enum class LandCover : int {
  kWater = 0,
  kForest = 1,
  kGrass = 2,
  kBush = 3,
  kBare = 4,
  kHouse = 5,
};

/// Number of distinct land-cover classes.
inline constexpr int kLandCoverClasses = 6;

[[nodiscard]] std::string_view land_cover_name(LandCover c);

/// A complete synthetic scene.  Bands are scaled to the 8-bit [0,255] range of
/// Landsat TM digital numbers; the DEM is in metres.
struct Scene {
  std::size_t width = 0;
  std::size_t height = 0;
  Grid dem;                         ///< elevation (m)
  std::vector<Grid> bands;          ///< spectral bands, [0,255]
  std::vector<std::string> band_names;
  Grid landcover;                   ///< LandCover labels
  Grid population;                  ///< demographic weight w(x,y) >= 0
  Grid moisture;                    ///< latent soil moisture in [0,1]
  Grid vegetation;                  ///< latent vegetation density in [0,1]

  /// Index of a band by name; throws when absent.
  [[nodiscard]] const Grid& band(std::string_view name) const;
};

struct SceneConfig {
  std::size_t width = 256;
  std::size_t height = 256;
  std::size_t villages = 6;          ///< settlement cluster count
  double house_density = 0.25;       ///< in-village house probability
  std::uint64_t seed = 7;
};

/// Generates a scene with bands "b4" (near-IR), "b5" (SWIR-1), "b7" (SWIR-2),
/// mirroring the TM bands the paper's HPS risk model uses.
[[nodiscard]] Scene generate_scene(const SceneConfig& config);

}  // namespace mmir
