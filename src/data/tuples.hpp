#pragma once
// Tuple-cloud generators for the linear-optimization experiments.
//
// The Onion evaluation in the paper ([11], quoted in §3.2) uses
// "three-parameter Gaussian distributed data sets"; we reproduce that, plus
// correlated / uniform / clustered variants for robustness studies, and a
// synthetic credit-applicant generator for the FICO example.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mmir {

/// A flat, row-major set of d-dimensional tuples.
class TupleSet {
 public:
  TupleSet() = default;
  TupleSet(std::size_t dim, std::size_t reserve_rows = 0) : dim_(dim) {
    MMIR_EXPECTS(dim > 0);
    data_.reserve(reserve_rows * dim);
  }

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept { return dim_ == 0 ? 0 : data_.size() / dim_; }

  void push_row(std::span<const double> row) {
    MMIR_EXPECTS(row.size() == dim_);
    data_.insert(data_.end(), row.begin(), row.end());
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    MMIR_EXPECTS(i < size());
    return {data_.data() + i * dim_, dim_};
  }

  [[nodiscard]] std::span<const double> raw() const noexcept { return data_; }

 private:
  std::size_t dim_ = 0;
  std::vector<double> data_;
};

/// Isotropic standard-Gaussian cloud (the paper's Onion workload).
[[nodiscard]] TupleSet gaussian_tuples(std::size_t n, std::size_t dim, std::uint64_t seed);

/// Gaussian cloud with a random SPD covariance (tests Onion on skewed data).
[[nodiscard]] TupleSet correlated_tuples(std::size_t n, std::size_t dim, std::uint64_t seed);

/// Uniform cube [0,1]^dim.
[[nodiscard]] TupleSet uniform_tuples(std::size_t n, std::size_t dim, std::uint64_t seed);

/// Mixture of `clusters` Gaussian blobs in [0,1]^dim.
[[nodiscard]] TupleSet clustered_tuples(std::size_t n, std::size_t dim, std::size_t clusters,
                                        std::uint64_t seed);

/// Credit-applicant attributes for the FICO-style linear model.  Attribute
/// order matches CreditAttribute below; values are scaled to "penalty units".
enum class CreditAttribute : std::size_t {
  kLatePayments = 0,        ///< count of late payments
  kCreditAgeYears = 1,      ///< how long credit has been established
  kUtilization = 2,         ///< used / available credit in [0,1]
  kResidenceYears = 3,      ///< time at present residence
  kEmploymentYears = 4,     ///< employment history length
  kDerogatories = 5,        ///< bankruptcies / charge-offs / collections
};

inline constexpr std::size_t kCreditAttributes = 6;

[[nodiscard]] std::string credit_attribute_name(CreditAttribute a);

/// Generates applicants with realistic correlations (long credit age tends to
/// pair with fewer derogatories, high utilization with late payments).
[[nodiscard]] TupleSet credit_applicants(std::size_t n, std::uint64_t seed);

}  // namespace mmir
