#pragma once
// Synthetic daily weather series — the stand-in for the weather-station feeds
// consumed by the paper's fire-ants finite-state model (Fig. 1) and the
// "wet season followed by dry season" node of the HPS Bayesian model (Fig. 3).
//
// Rain occurrence follows a two-state Markov chain (wet/dry persistence gives
// realistic dry-spell run lengths); temperature is a seasonal sinusoid plus
// AR(1) noise.  Each region of a WeatherArchive gets an independent stream
// derived from one master seed, so archives are reproducible.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace mmir {

/// One day of observations at one region.
struct DailyWeather {
  double rain_mm = 0.0;
  double temp_c = 0.0;

  [[nodiscard]] bool rained() const noexcept { return rain_mm > 0.1; }
};

using WeatherSeries = std::vector<DailyWeather>;

struct WeatherConfig {
  std::size_t days = 365;
  double p_wet_given_wet = 0.65;   ///< rain persistence
  double p_wet_given_dry = 0.18;   ///< rain onset probability
  double mean_rain_mm = 9.0;       ///< rain amount on wet days (exponential mean)
  double temp_mean_c = 22.0;       ///< annual mean temperature
  double temp_amplitude_c = 9.0;   ///< seasonal swing
  double temp_noise_c = 2.5;       ///< day-to-day AR(1) innovation scale
  double temp_ar1 = 0.6;           ///< AR(1) coefficient of the noise
};

/// Generates one region's series.
[[nodiscard]] WeatherSeries generate_weather(const WeatherConfig& config, Rng& rng);

/// A multi-region weather archive; region r is independent but reproducible.
struct WeatherArchive {
  std::vector<WeatherSeries> regions;

  [[nodiscard]] std::size_t region_count() const noexcept { return regions.size(); }
  [[nodiscard]] std::size_t days() const noexcept {
    return regions.empty() ? 0 : regions.front().size();
  }
};

/// Builds an archive of `regions` series.  Per-region configs are jittered
/// around `base` (wetter / drier / hotter regions) so retrieval has contrast.
[[nodiscard]] WeatherArchive generate_weather_archive(std::size_t regions,
                                                      const WeatherConfig& base,
                                                      std::uint64_t seed);

/// Longest run of consecutive dry days in a series.
[[nodiscard]] std::size_t longest_dry_spell(const WeatherSeries& series) noexcept;

}  // namespace mmir
