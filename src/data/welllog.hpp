#pragma once
// Synthetic well logs — the stand-in for the FMI image + gamma-ray traces in
// the paper's geology knowledge model (Fig. 4: "shale on top of sandstone on
// top of siltstone, adjacent, <10 ft, gamma ray > 45").
//
// A well is a column of lithology layers; each lithology has a characteristic
// gamma-ray (API) distribution — shale is hot (high API), clean sandstone is
// cold — and the continuous gamma trace is sampled from the layer stack with
// measurement noise.

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace mmir {

enum class Lithology : int {
  kShale = 0,
  kSandstone = 1,
  kSiltstone = 2,
  kLimestone = 3,
  kCoal = 4,
};

inline constexpr int kLithologyClasses = 5;

[[nodiscard]] std::string_view lithology_name(Lithology l);

/// Typical gamma-ray mean for a lithology (API units), used by the generator
/// and available to models as domain knowledge.
[[nodiscard]] double typical_gamma_api(Lithology l) noexcept;

/// One stratigraphic layer, measured downward from the surface.
struct LogLayer {
  Lithology lithology = Lithology::kShale;
  double top_ft = 0.0;        ///< depth of the layer top
  double thickness_ft = 0.0;
  double gamma_api = 0.0;     ///< mean gamma response of the layer
};

/// A well: layer stack plus the sampled gamma trace.
struct WellLog {
  std::size_t id = 0;
  std::vector<LogLayer> layers;          ///< ordered top-down
  std::vector<double> gamma_trace;       ///< sampled every sample_interval_ft
  double sample_interval_ft = 0.5;

  [[nodiscard]] double total_depth_ft() const noexcept;
  /// Layer index containing the given depth, or -1 when out of range.
  [[nodiscard]] long layer_at(double depth_ft) const noexcept;
};

struct WellLogConfig {
  std::size_t mean_layers = 24;
  double mean_thickness_ft = 18.0;
  double gamma_noise_api = 6.0;
  double sample_interval_ft = 0.5;
  /// Probability boost for geologically common successions (e.g. shale over
  /// sandstone in fluvial sequences) so riverbed patterns actually occur.
  double succession_bias = 0.5;
};

[[nodiscard]] WellLog generate_well_log(std::size_t id, const WellLogConfig& config, Rng& rng);

struct WellLogArchive {
  std::vector<WellLog> wells;
  [[nodiscard]] std::size_t size() const noexcept { return wells.size(); }
};

[[nodiscard]] WellLogArchive generate_well_log_archive(std::size_t wells,
                                                       const WellLogConfig& config,
                                                       std::uint64_t seed);

}  // namespace mmir
