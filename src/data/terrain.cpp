#include "data/terrain.hpp"

#include <cmath>

namespace mmir {

namespace {

/// Smallest 2^k + 1 covering both dimensions.
std::size_t diamond_square_size(std::size_t w, std::size_t h) {
  std::size_t need = (w > h ? w : h);
  std::size_t n = 2;
  while (n + 1 < need) n *= 2;
  return n + 1;
}

/// Deterministic per-lattice-point uniform in [-1, 1].
double lattice_noise(std::uint64_t seed, std::uint64_t x, std::uint64_t y) {
  const std::uint64_t h = mix64(seed ^ (x * 0x9e3779b97f4a7c15ULL) ^ (y * 0xc2b2ae3d27d4eb4fULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

double smoothstep(double t) noexcept { return t * t * (3.0 - 2.0 * t); }

}  // namespace

Grid generate_terrain(const TerrainConfig& config) {
  MMIR_EXPECTS(config.roughness > 0.0 && config.roughness < 1.0);
  const std::size_t n = diamond_square_size(config.width, config.height);
  Grid field(n, n, config.base_elevation_m);
  Rng rng(config.seed);

  // Seed the four corners.
  for (std::size_t y : {std::size_t{0}, n - 1})
    for (std::size_t x : {std::size_t{0}, n - 1})
      field.cell(x, y) = config.base_elevation_m + rng.normal(0.0, config.relief_m);

  double amplitude = config.relief_m;
  for (std::size_t step = n - 1; step > 1; step /= 2) {
    const std::size_t half = step / 2;
    // Diamond step: centre of each square gets the corner mean + noise.
    for (std::size_t y = half; y < n; y += step) {
      for (std::size_t x = half; x < n; x += step) {
        const double mean = 0.25 * (field.cell(x - half, y - half) + field.cell(x + half, y - half) +
                                    field.cell(x - half, y + half) + field.cell(x + half, y + half));
        field.cell(x, y) = mean + rng.normal(0.0, amplitude);
      }
    }
    // Square step: edge midpoints get the mean of their (clamped) diamond.
    for (std::size_t y = 0; y < n; y += half) {
      const std::size_t x_start = (y / half) % 2 == 0 ? half : 0;
      for (std::size_t x = x_start; x < n; x += step) {
        double sum = 0.0;
        int count = 0;
        const auto lx = static_cast<long>(x);
        const auto ly = static_cast<long>(y);
        const auto lh = static_cast<long>(half);
        const long offsets[4][2] = {{0, -lh}, {0, lh}, {-lh, 0}, {lh, 0}};
        for (const auto& o : offsets) {
          const long px = lx + o[0];
          const long py = ly + o[1];
          if (px >= 0 && py >= 0 && px < static_cast<long>(n) && py < static_cast<long>(n)) {
            sum += field.cell(static_cast<std::size_t>(px), static_cast<std::size_t>(py));
            ++count;
          }
        }
        field.cell(x, y) = sum / count + rng.normal(0.0, amplitude);
      }
    }
    amplitude *= config.roughness;
  }

  // Crop to the requested dimensions.
  Grid out(config.width, config.height);
  for (std::size_t y = 0; y < config.height; ++y)
    for (std::size_t x = 0; x < config.width; ++x) out.cell(x, y) = field.cell(x, y);
  return out;
}

Grid value_noise(std::size_t width, std::size_t height, std::size_t octaves, std::uint64_t seed) {
  MMIR_EXPECTS(octaves > 0);
  Grid out(width, height, 0.0);
  double amplitude = 1.0;
  double total_amplitude = 0.0;
  double frequency = 4.0;  // lattice cells across the grid at octave 0
  for (std::size_t octave = 0; octave < octaves; ++octave) {
    const std::uint64_t octave_seed = mix64(seed + octave * 0x51afd6ed558ccd6dULL);
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double fx = static_cast<double>(x) / static_cast<double>(width) * frequency;
        const double fy = static_cast<double>(y) / static_cast<double>(height) * frequency;
        const auto x0 = static_cast<std::uint64_t>(fx);
        const auto y0 = static_cast<std::uint64_t>(fy);
        const double tx = smoothstep(fx - static_cast<double>(x0));
        const double ty = smoothstep(fy - static_cast<double>(y0));
        const double v00 = lattice_noise(octave_seed, x0, y0);
        const double v10 = lattice_noise(octave_seed, x0 + 1, y0);
        const double v01 = lattice_noise(octave_seed, x0, y0 + 1);
        const double v11 = lattice_noise(octave_seed, x0 + 1, y0 + 1);
        const double top = v00 + (v10 - v00) * tx;
        const double bottom = v01 + (v11 - v01) * tx;
        out.cell(x, y) += amplitude * (top + (bottom - top) * ty);
      }
    }
    total_amplitude += amplitude;
    amplitude *= 0.5;
    frequency *= 2.0;
  }
  // Map from [-total, total] to [0, 1].
  for (double& v : out.flat()) v = 0.5 + 0.5 * v / total_amplitude;
  return out;
}

}  // namespace mmir
