#pragma once
// Error handling primitives for the MMIR library.
//
// Construction / validation failures throw mmir::Error (an std::runtime_error
// with a formatted message).  Hot-path preconditions use MMIR_EXPECTS, which
// throws in all builds: model-based retrieval engines are driven by untrusted
// query parameters, so silently corrupting an index is never acceptable.

#include <stdexcept>
#include <string>
#include <string_view>

namespace mmir {

/// Exception type thrown for all MMIR validation and domain errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_expects(std::string_view cond, std::string_view file, int line) {
  throw Error("precondition failed: " + std::string(cond) + " at " + std::string(file) + ":" +
              std::to_string(line));
}
}  // namespace detail

}  // namespace mmir

/// Precondition check: throws mmir::Error when violated (all build types).
#define MMIR_EXPECTS(cond)                                         \
  do {                                                             \
    if (!(cond)) ::mmir::detail::fail_expects(#cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition check, same behaviour as MMIR_EXPECTS.
#define MMIR_ENSURES(cond) MMIR_EXPECTS(cond)
