#pragma once
// Hardware-independent cost accounting.
//
// The paper reports speedups measured on the authors' testbed; we cannot
// reproduce their wall-clock numbers, so every retrieval engine in this
// library threads a CostMeter that counts *work*: data points touched, model
// operations executed, and bytes notionally read from the archive.  Speedup
// ratios computed from these counters reproduce the paper's *shape* on any
// host, and wall-clock is recorded alongside for reference.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/clock.hpp"

namespace mmir {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Accumulates the work performed by one retrieval execution.
class CostMeter {
 public:
  /// Records that `n` archive data points (pixels, tuples, log samples,
  /// series days) were read and fed to some computation.
  void add_points(std::uint64_t n) noexcept { points_ += n; }

  /// Records `n` elementary model operations (multiply-adds, CPT lookups,
  /// FSM transitions, fuzzy evaluations).
  void add_ops(std::uint64_t n) noexcept { ops_ += n; }

  /// Records `n` bytes notionally transferred from archive storage.
  void add_bytes(std::uint64_t n) noexcept { bytes_ += n; }

  /// Records that one candidate was pruned without evaluation.
  void add_pruned(std::uint64_t n = 1) noexcept { pruned_ += n; }

  /// Records `n` engine-cache hits (whole-query results or tile summaries
  /// served without recomputation; see engine/cache.hpp).
  void add_cache_hits(std::uint64_t n = 1) noexcept { cache_hits_ += n; }

  /// Records `n` engine-cache misses (lookups that fell through to work).
  void add_cache_misses(std::uint64_t n = 1) noexcept { cache_misses_ += n; }

  void add_wall(std::chrono::nanoseconds d) noexcept { wall_ += d; }

  [[nodiscard]] std::uint64_t points() const noexcept { return points_; }
  [[nodiscard]] std::uint64_t ops() const noexcept { return ops_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t pruned() const noexcept { return pruned_; }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept { return cache_misses_; }
  [[nodiscard]] std::chrono::nanoseconds wall() const noexcept { return wall_; }
  [[nodiscard]] double wall_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(wall_).count();
  }

  void reset() noexcept { *this = CostMeter{}; }

  CostMeter& operator+=(const CostMeter& other) noexcept {
    points_ += other.points_;
    ops_ += other.ops_;
    bytes_ += other.bytes_;
    pruned_ += other.pruned_;
    cache_hits_ += other.cache_hits_;
    cache_misses_ += other.cache_misses_;
    wall_ += other.wall_;
    return *this;
  }

  /// Folds another meter into this one — the reduction step of per-worker
  /// meter accounting: each worker of a parallel executor charges a private
  /// CostMeter with no synchronization, and the coordinating thread merges
  /// them after the join (see engine/parallel_exec.cpp).  Alias of
  /// operator+=; both sum every counter including cache hits/misses, and
  /// wall-clock sums too (so merged wall is aggregate CPU-ish time, not
  /// elapsed time — executors add elapsed time to the caller's meter via
  /// ScopedTimer instead).
  CostMeter& merge(const CostMeter& other) noexcept { return *this += other; }

 private:
  std::uint64_t points_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t pruned_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::chrono::nanoseconds wall_{0};
};

/// Prints the work counters; cache hit/miss stats are appended only when the
/// meter saw any cache traffic (hits + misses > 0).
std::ostream& operator<<(std::ostream& os, const CostMeter& meter);

/// RAII timer adding its lifetime to a CostMeter's wall-clock on destruction.
/// Built on obs::ScopedTimerBase so meters, latency histograms, and bench
/// timings all read the same clock (obs/clock.hpp).
class ScopedTimer : public obs::ScopedTimerBase {
 public:
  explicit ScopedTimer(CostMeter& meter) noexcept : meter_(meter) {}
  ~ScopedTimer() { meter_.add_wall(elapsed()); }

 private:
  CostMeter& meter_;
};

/// Op cost of the §4.2 serial baseline: a full-model scan evaluates all N
/// model terms on every one of the n archive points, so its op count is
/// exactly n·N.  EXPLAIN (obs/explain.hpp) divides this by the measured op
/// count to report the achieved speedup next to the predicted pm·pd.
[[nodiscard]] constexpr std::uint64_t serial_baseline_ops(std::uint64_t total_points,
                                                          std::uint64_t model_terms) noexcept {
  return total_points * model_terms;
}

/// Publishes a completed execution's meter into registry-wide totals
/// (query_points_total, query_ops_total, ... — the registry "absorbing" the
/// ad-hoc CostMeter counters): per-query accounting stays on the meter,
/// fleet-wide aggregates live in the registry.
void publish(const CostMeter& meter, obs::MetricsRegistry& registry);

/// Baseline-vs-method comparison, as reported in the paper's evaluation.
struct SpeedupReport {
  std::string label;
  CostMeter baseline;
  CostMeter method;

  /// Work speedup as the paper reports it: points touched by the baseline
  /// over points touched by the method (>= 1 means the method wins).
  [[nodiscard]] double point_speedup() const noexcept;
  /// Operation-count speedup.
  [[nodiscard]] double op_speedup() const noexcept;
  /// Wall-clock speedup (host-dependent; shown for reference only).
  [[nodiscard]] double wall_speedup() const noexcept;
};

std::ostream& operator<<(std::ostream& os, const SpeedupReport& report);

}  // namespace mmir
