#pragma once
// Bounded top-K accumulator.
//
// Every retrieval path in the framework (sequential scan, Onion, SPROC, FSM
// matching, progressive execution) funnels scored candidates through TopK.
// The structure keeps the K best items seen so far in a min-heap so insertion
// is O(log K) and the current K-th best score — the pruning threshold used by
// index early-termination — is O(1).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mmir {

/// Keeps the K items with the largest scores.  Ties are broken by insertion
/// order (earlier wins) so results are deterministic.
template <typename Item>
class TopK {
 public:
  struct Entry {
    double score;
    std::uint64_t sequence;  // insertion counter, for deterministic ties
    Item item;
  };

  explicit TopK(std::size_t k) : k_(k) { MMIR_EXPECTS(k > 0); }

  /// Offers a candidate; returns true when it entered the top-K set.
  bool offer(double score, Item item) {
    const std::uint64_t seq = next_sequence_++;
    if (heap_.size() < k_) {
      heap_.push_back(Entry{score, seq, std::move(item)});
      std::push_heap(heap_.begin(), heap_.end(), worse_first());
      return true;
    }
    if (!beats_worst(score, seq)) return false;
    std::pop_heap(heap_.begin(), heap_.end(), worse_first());
    heap_.back() = Entry{score, seq, std::move(item)};
    std::push_heap(heap_.begin(), heap_.end(), worse_first());
    return true;
  }

  /// Offers a candidate under a caller-supplied total-order rank (smaller
  /// rank wins exact score ties).  Unlike offer(), whose insertion-counter
  /// tie-break depends on visit order, ranked offers make the held set a
  /// pure function of the candidate multiset: the K best by
  /// (score desc, rank asc).  Executors feed the pixel's row-major offset as
  /// the rank, so serial, parallel, sharded and batched scans converge on one
  /// canonical top-K regardless of traversal order.
  bool offer_ranked(double score, std::uint64_t rank, Item item) {
    if (heap_.size() < k_) {
      heap_.push_back(Entry{score, rank, std::move(item)});
      std::push_heap(heap_.begin(), heap_.end(), worse_first());
      return true;
    }
    const Entry& worst = heap_.front();
    if (score < worst.score || (score == worst.score && rank >= worst.sequence)) return false;
    std::pop_heap(heap_.begin(), heap_.end(), worse_first());
    heap_.back() = Entry{score, rank, std::move(item)};
    std::push_heap(heap_.begin(), heap_.end(), worse_first());
    return true;
  }

  /// True once K items are held; combined with threshold() enables pruning.
  [[nodiscard]] bool full() const noexcept { return heap_.size() >= k_; }

  /// Score of the current K-th best (pruning bound).  -inf until full.
  [[nodiscard]] double threshold() const noexcept {
    return full() ? heap_.front().score : -std::numeric_limits<double>::infinity();
  }

  /// Rank (sequence) of the current worst held entry.  Meaningful only for
  /// heaps fed via offer_ranked; with threshold() it gives complete tie
  /// evidence: a candidate scoring exactly threshold() displaces the worst
  /// entry iff its rank is smaller than worst_rank().
  [[nodiscard]] std::uint64_t worst_rank() const {
    MMIR_EXPECTS(!heap_.empty());
    return heap_.front().sequence;
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return k_; }

  /// Extracts results ordered best-first.  The accumulator is left empty.
  [[nodiscard]] std::vector<Entry> take_sorted() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.sequence < b.sequence;
    });
    return out;
  }

 private:
  // Min-heap on (score, reversed sequence): the *worst* entry sits on top.
  [[nodiscard]] static auto worse_first() noexcept {
    return [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.sequence < b.sequence;  // later insertions are "worse" on ties
    };
  }

  [[nodiscard]] bool beats_worst(double score, std::uint64_t) const noexcept {
    // Strictly-greater: on ties the incumbent (earlier) entry is kept.
    return score > heap_.front().score;
  }

  std::size_t k_;
  std::uint64_t next_sequence_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace mmir
