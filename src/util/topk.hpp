#pragma once
// Bounded top-K accumulator.
//
// Every retrieval path in the framework (sequential scan, Onion, SPROC, FSM
// matching, progressive execution) funnels scored candidates through TopK.
// The structure keeps the K best items seen so far in a min-heap so insertion
// is O(log K) and the current K-th best score — the pruning threshold used by
// index early-termination — is O(1).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mmir {

/// Keeps the K items with the largest scores.  Ties are broken by insertion
/// order (earlier wins) so results are deterministic.
template <typename Item>
class TopK {
 public:
  struct Entry {
    double score;
    std::uint64_t sequence;  // insertion counter, for deterministic ties
    Item item;
  };

  explicit TopK(std::size_t k) : k_(k) { MMIR_EXPECTS(k > 0); }

  /// Offers a candidate; returns true when it entered the top-K set.
  bool offer(double score, Item item) {
    const std::uint64_t seq = next_sequence_++;
    if (heap_.size() < k_) {
      heap_.push_back(Entry{score, seq, std::move(item)});
      std::push_heap(heap_.begin(), heap_.end(), worse_first());
      return true;
    }
    if (!beats_worst(score, seq)) return false;
    std::pop_heap(heap_.begin(), heap_.end(), worse_first());
    heap_.back() = Entry{score, seq, std::move(item)};
    std::push_heap(heap_.begin(), heap_.end(), worse_first());
    return true;
  }

  /// True once K items are held; combined with threshold() enables pruning.
  [[nodiscard]] bool full() const noexcept { return heap_.size() >= k_; }

  /// Score of the current K-th best (pruning bound).  -inf until full.
  [[nodiscard]] double threshold() const noexcept {
    return full() ? heap_.front().score : -std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return k_; }

  /// Extracts results ordered best-first.  The accumulator is left empty.
  [[nodiscard]] std::vector<Entry> take_sorted() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.sequence < b.sequence;
    });
    return out;
  }

 private:
  // Min-heap on (score, reversed sequence): the *worst* entry sits on top.
  [[nodiscard]] static auto worse_first() noexcept {
    return [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.sequence < b.sequence;  // later insertions are "worse" on ties
    };
  }

  [[nodiscard]] bool beats_worst(double score, std::uint64_t) const noexcept {
    // Strictly-greater: on ties the incumbent (earlier) entry is kept.
    return score > heap_.front().score;
  }

  std::size_t k_;
  std::uint64_t next_sequence_ = 0;
  std::vector<Entry> heap_;
};

}  // namespace mmir
