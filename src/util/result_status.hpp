#pragma once
// Completion status of a fault-tolerant query execution.
//
// Production retrieval over large, messy archives cannot promise to run every
// query to completion: budgets expire, deadlines pass, callers cancel, and
// poisoned data must be skipped.  Every budget-aware execution path returns
// its result tagged with a ResultStatus so callers can distinguish an exact
// answer from a best-effort partial one (see DESIGN.md "Robustness &
// degraded operation").

#include <cstdint>

namespace mmir {

/// How a query execution ended.
enum class ResultStatus : std::uint8_t {
  kComplete = 0,           ///< exact answer, no faults observed
  kDegraded = 1,           ///< exact over the *finite* data; poisoned samples were skipped
  kTruncatedBudget = 2,    ///< stopped early: cost budget exhausted
  kTruncatedDeadline = 3,  ///< stopped early: wall-clock deadline passed
  kCancelled = 4,          ///< stopped early: cooperative cancellation flag raised
  kShed = 5,               ///< never ran: rejected by engine admission control (queue full
                           ///< or shutdown); the result examined zero candidates
};

/// True when the execution stopped before examining all candidates.  A shed
/// query is the extreme case: it examined nothing, so its (empty) result is
/// truncated with the loosest sound missed bound.
[[nodiscard]] constexpr bool is_truncated(ResultStatus s) noexcept {
  return s == ResultStatus::kTruncatedBudget || s == ResultStatus::kTruncatedDeadline ||
         s == ResultStatus::kCancelled || s == ResultStatus::kShed;
}

[[nodiscard]] constexpr const char* to_string(ResultStatus s) noexcept {
  switch (s) {
    case ResultStatus::kComplete: return "complete";
    case ResultStatus::kDegraded: return "degraded";
    case ResultStatus::kTruncatedBudget: return "truncated-budget";
    case ResultStatus::kTruncatedDeadline: return "truncated-deadline";
    case ResultStatus::kCancelled: return "cancelled";
    case ResultStatus::kShed: return "shed";
  }
  return "unknown";
}

}  // namespace mmir
