#pragma once
// FNV-1a over a byte range — cheap, deterministic, good enough to catch
// flipped bits and torn writes (not an adversarial MAC).  One definition
// shared by the on-disk checksum trailers (archive/io) and the wire-protocol
// frame trailers (net/wire), so both layers agree on what "corrupt" means.

#include <cstddef>
#include <cstdint>

namespace mmir {

inline constexpr std::uint64_t kFnv1aBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t n) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = kFnv1aBasis;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace mmir
