#pragma once
// Capped exponential backoff for retrying transient failures.
//
// Archive loads can fail transiently (a flaky NFS mount, a half-synced
// replica, an injected test fault).  Loaders retry under a RetryPolicy; the
// delays double from `initial_backoff` up to `max_backoff`.  Policies default
// to microsecond-scale delays so test suites stay fast; production callers
// pass their own.

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace mmir {

/// How many times to attempt an operation and how long to wait in between.
struct RetryPolicy {
  int max_attempts = 3;  ///< total attempts (>= 1), not retries
  std::chrono::microseconds initial_backoff{100};
  std::chrono::microseconds max_backoff{5000};
};

/// Stateful backoff sequence: next_delay() yields initial, 2*initial, ...
/// clamped to the policy's max.
class ExponentialBackoff {
 public:
  explicit ExponentialBackoff(const RetryPolicy& policy) noexcept
      : current_(policy.initial_backoff), max_(policy.max_backoff) {}

  [[nodiscard]] std::chrono::microseconds next_delay() noexcept {
    const auto delay = current_;
    current_ = std::min(current_ * 2, max_);
    return delay;
  }

 private:
  std::chrono::microseconds current_;
  std::chrono::microseconds max_;
};

}  // namespace mmir
