#pragma once
// Capped exponential backoff with seeded jitter for retrying transient
// failures.
//
// Archive loads can fail transiently (a flaky NFS mount, a half-synced
// replica, an injected test fault).  Loaders retry under a RetryPolicy; the
// base delays double from `initial_backoff` up to `max_backoff`.  Each delay
// is then shortened by a deterministic pseudo-random fraction of up to
// `jitter`, so concurrent retriers (many shards re-reading after the same
// blip) spread out instead of hammering the store in lockstep — the
// thundering-herd failure mode.  The jitter stream is seeded: a fixed
// (jitter_seed, stream) pair always yields the same delay sequence, so
// retry timing is reproducible in tests; distinct streams (e.g. hashed from
// the file path or shard id) decorrelate concurrent retriers.  Policies
// default to microsecond-scale delays so test suites stay fast; production
// callers pass their own.

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "util/error.hpp"

namespace mmir {

/// How many times to attempt an operation and how long to wait in between.
struct RetryPolicy {
  int max_attempts = 3;  ///< total attempts (>= 1), not retries
  std::chrono::microseconds initial_backoff{100};
  std::chrono::microseconds max_backoff{5000};
  /// Fraction of every delay that jitter may remove, in [0, 1]: each delay
  /// is base * (1 - jitter * u) with u uniform in [0, 1).  0 disables
  /// jitter (exact exponential sequence).
  double jitter = 0.5;
  /// Seed of the jitter stream; combined with a per-call-site stream id.
  std::uint64_t jitter_seed = 0x6a69747465727921ULL;
};

/// Stateful backoff sequence: next_delay() yields jittered initial,
/// 2*initial, ... with the base clamped to the policy's max.
class ExponentialBackoff {
 public:
  /// `stream` decorrelates concurrent retriers sharing one policy: same
  /// (jitter_seed, stream) -> same delay sequence, different stream ->
  /// independent jitter.
  explicit ExponentialBackoff(const RetryPolicy& policy, std::uint64_t stream = 0) noexcept
      : current_(policy.initial_backoff),
        max_(policy.max_backoff),
        jitter_(std::clamp(policy.jitter, 0.0, 1.0)),
        state_(policy.jitter_seed ^ (stream * 0x9e3779b97f4a7c15ULL)) {}

  [[nodiscard]] std::chrono::microseconds next_delay() noexcept {
    const auto base = current_;
    current_ = std::min(current_ * 2, max_);
    if (jitter_ <= 0.0) return base;
    // Inline splitmix64 step (kept self-contained so this header stays
    // leaf-level, like query_context.hpp).
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
    const double scaled = static_cast<double>(base.count()) * (1.0 - jitter_ * u);
    return std::chrono::microseconds(static_cast<std::int64_t>(scaled));
  }

 private:
  std::chrono::microseconds current_;
  std::chrono::microseconds max_;
  double jitter_;
  std::uint64_t state_;
};

}  // namespace mmir
