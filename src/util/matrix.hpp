#pragma once
// Small dense linear algebra: just enough for OLS/ridge regression and
// Bayesian-network factor bookkeeping.  Row-major, double precision.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace mmir {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    MMIR_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    MMIR_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    MMIR_EXPECTS(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] Matrix transposed() const;

  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  friend Matrix operator*(double s, const Matrix& a);

  /// Matrix–vector product.
  [[nodiscard]] std::vector<double> apply(std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Throws mmir::Error when A is not SPD (within tolerance).
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

/// Solves A x = b via Gaussian elimination with partial pivoting.
/// Throws mmir::Error for singular systems.
[[nodiscard]] std::vector<double> gaussian_solve(Matrix a, std::vector<double> b);

/// Dot product of equally sized spans.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

}  // namespace mmir
