#include "util/cost.hpp"

#include <limits>
#include <ostream>

#include "obs/metrics.hpp"

namespace mmir {

namespace {
double ratio(double num, double den) noexcept {
  if (den <= 0.0) return num > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  return num / den;
}
}  // namespace

std::ostream& operator<<(std::ostream& os, const CostMeter& meter) {
  os << "points " << meter.points() << ", ops " << meter.ops() << ", bytes " << meter.bytes()
     << ", pruned " << meter.pruned() << ", wall " << meter.wall_ms() << "ms";
  if (meter.cache_hits() + meter.cache_misses() > 0) {
    const double total = static_cast<double>(meter.cache_hits() + meter.cache_misses());
    os << ", cache " << meter.cache_hits() << " hit / " << meter.cache_misses() << " miss ("
       << (static_cast<double>(meter.cache_hits()) / total * 100.0) << "% hit)";
  }
  return os;
}

void publish(const CostMeter& meter, obs::MetricsRegistry& registry) {
  registry.counter("query_points_total").add(meter.points());
  registry.counter("query_ops_total").add(meter.ops());
  registry.counter("query_bytes_total").add(meter.bytes());
  registry.counter("query_pruned_total").add(meter.pruned());
  registry.counter("cache_hits_total").add(meter.cache_hits());
  registry.counter("cache_misses_total").add(meter.cache_misses());
}

double SpeedupReport::point_speedup() const noexcept {
  return ratio(static_cast<double>(baseline.points()), static_cast<double>(method.points()));
}

double SpeedupReport::op_speedup() const noexcept {
  return ratio(static_cast<double>(baseline.ops()), static_cast<double>(method.ops()));
}

double SpeedupReport::wall_speedup() const noexcept {
  return ratio(baseline.wall_ms(), method.wall_ms());
}

std::ostream& operator<<(std::ostream& os, const SpeedupReport& report) {
  os << report.label << ": points " << report.baseline.points() << " -> "
     << report.method.points() << " (" << report.point_speedup() << "x), ops "
     << report.baseline.ops() << " -> " << report.method.ops() << " (" << report.op_speedup()
     << "x), wall " << report.baseline.wall_ms() << "ms -> " << report.method.wall_ms() << "ms ("
     << report.wall_speedup() << "x)";
  return os;
}

}  // namespace mmir
