#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mmir {

void OnlineStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
}

double OnlineStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

Interval OnlineStats::range() const noexcept {
  return count_ == 0 ? Interval::point(0.0) : Interval{min_, max_};
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  MMIR_EXPECTS(bins > 0);
  MMIR_EXPECTS(hi > lo);
}

void Histogram::add(double value) noexcept {
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<long>(t * static_cast<double>(counts_.size()));
  if (bin < 0) bin = 0;
  if (bin >= static_cast<long>(counts_.size())) bin = static_cast<long>(counts_.size()) - 1;
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (double v : values) add(v);
}

std::size_t Histogram::count(std::size_t bin) const {
  MMIR_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

double Histogram::l1_distance(const Histogram& other) const {
  MMIR_EXPECTS(counts_.size() == other.counts_.size());
  const auto a = normalized();
  const auto b = other.normalized();
  double distance = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) distance += std::abs(a[i] - b[i]);
  return distance;
}

double Histogram::quantile(double q) const {
  MMIR_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  const double bin_width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative >= target) return lo_ + bin_width * static_cast<double>(i);
  }
  return hi_;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  MMIR_EXPECTS(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  OnlineStats sa;
  OnlineStats sb;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sa.add(a[i]);
    sb.add(b[i]);
  }
  const double denom = sa.stddev() * sb.stddev();
  if (denom == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  cov /= static_cast<double>(a.size());
  return cov / denom;
}

}  // namespace mmir
