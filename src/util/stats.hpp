#pragma once
// Streaming statistics and fixed-bin histograms.
//
// Tile summaries, feature extractors and the accuracy metrics all need
// single-pass mean/variance/min/max; OnlineStats implements Welford's
// algorithm.  Histogram supports the multi-abstraction feature level
// (band histograms as cheap raster surrogates).

#include <cstddef>
#include <span>
#include <vector>

#include "util/interval.hpp"

namespace mmir {

/// Welford single-pass accumulator: mean, variance, min, max, count.
class OnlineStats {
 public:
  void add(double value) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Population variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// [min, max] of the observed samples; point(0) when empty.
  [[nodiscard]] Interval range() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over a closed range; out-of-range values clamp to the
/// boundary bins (raster bands are range-limited by construction).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_all(std::span<const double> values) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Normalized bin frequencies (sums to 1; all-zero when empty).
  [[nodiscard]] std::vector<double> normalized() const;
  /// L1 distance between normalized histograms (must have equal bin counts).
  [[nodiscard]] double l1_distance(const Histogram& other) const;
  /// Value at the given cumulative quantile q in [0,1] (bin lower edge).
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson correlation of two equally sized samples (0 when degenerate).
[[nodiscard]] double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace mmir
