#pragma once
// Closed-interval arithmetic used for progressive screening.
//
// Tile summaries store [min, max] per band; pushing those intervals through a
// model yields bounds on the model's value anywhere in the tile.  A tile whose
// upper bound falls below the current top-K threshold is pruned without
// touching its pixels — the core mechanism behind the paper's progressive
// execution speedups.

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace mmir {

/// Closed interval [lo, hi].  Empty intervals are not representable; callers
/// construct only from observed data, so lo <= hi always holds.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  constexpr Interval() = default;
  constexpr Interval(double low, double high) : lo(low), hi(high) {}

  /// Degenerate interval containing a single point.
  [[nodiscard]] static constexpr Interval point(double v) noexcept { return {v, v}; }

  /// The whole real line.
  [[nodiscard]] static Interval everything() noexcept {
    return {-std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr bool contains(double v) const noexcept { return lo <= v && v <= hi; }
  [[nodiscard]] constexpr double width() const noexcept { return hi - lo; }
  [[nodiscard]] constexpr double mid() const noexcept { return 0.5 * (lo + hi); }

  /// Smallest interval covering both operands.
  [[nodiscard]] constexpr Interval hull(const Interval& other) const noexcept {
    return {lo < other.lo ? lo : other.lo, hi > other.hi ? hi : other.hi};
  }

  [[nodiscard]] constexpr bool intersects(const Interval& other) const noexcept {
    return lo <= other.hi && other.lo <= hi;
  }

  friend constexpr Interval operator+(const Interval& a, const Interval& b) noexcept {
    return {a.lo + b.lo, a.hi + b.hi};
  }
  friend constexpr Interval operator-(const Interval& a, const Interval& b) noexcept {
    return {a.lo - b.hi, a.hi - b.lo};
  }
  friend constexpr Interval operator*(double c, const Interval& x) noexcept {
    return c >= 0.0 ? Interval{c * x.lo, c * x.hi} : Interval{c * x.hi, c * x.lo};
  }
  friend constexpr Interval operator*(const Interval& x, double c) noexcept { return c * x; }
  friend constexpr Interval operator+(const Interval& x, double c) noexcept {
    return {x.lo + c, x.hi + c};
  }
  friend constexpr Interval operator+(double c, const Interval& x) noexcept { return x + c; }

  friend Interval operator*(const Interval& a, const Interval& b) noexcept {
    const double p1 = a.lo * b.lo;
    const double p2 = a.lo * b.hi;
    const double p3 = a.hi * b.lo;
    const double p4 = a.hi * b.hi;
    return {std::min(std::min(p1, p2), std::min(p3, p4)),
            std::max(std::max(p1, p2), std::max(p3, p4))};
  }
};

}  // namespace mmir
