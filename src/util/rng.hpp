#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// All synthetic data in the reproduction flows through Rng so experiments are
// exactly repeatable across runs and hosts.  The generator is xoshiro256**
// seeded via splitmix64, which is fast, has a 2^256-1 period, and passes
// BigCrush — more than adequate for workload synthesis.

#include <array>
#include <cstdint>
#include <vector>

namespace mmir {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a value (useful for hashing coordinates to noise).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Raw 64 uniform bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // UniformRandomBitGenerator interface so <random> distributions also work.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean / standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential with rate lambda (> 0).
  [[nodiscard]] double exponential(double lambda) noexcept;

  /// Poisson-distributed count with given mean (Knuth for small, PTRS-style
  /// normal approximation above 64 — adequate for synthetic event counts).
  [[nodiscard]] int poisson(double mean) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Samples an index from an (unnormalized) non-negative weight vector.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[uniform_int(i)]);
    }
  }

  /// Derives an independent child generator (for per-entity streams).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace mmir
