#include "util/matrix.hpp"

#include <cmath>

namespace mmir {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    MMIR_EXPECTS(r.size() == cols_);
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  MMIR_EXPECTS(a.cols_ == b.rows_);
  Matrix out(a.rows_, b.cols_, 0.0);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  MMIR_EXPECTS(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  Matrix out(a.rows_, a.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i)
    for (std::size_t j = 0; j < a.cols_; ++j) out(i, j) = a(i, j) + b(i, j);
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  MMIR_EXPECTS(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  Matrix out(a.rows_, a.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i)
    for (std::size_t j = 0; j < a.cols_; ++j) out(i, j) = a(i, j) - b(i, j);
  return out;
}

Matrix operator*(double s, const Matrix& a) {
  Matrix out(a.rows_, a.cols_);
  for (std::size_t i = 0; i < a.rows_; ++i)
    for (std::size_t j = 0; j < a.cols_; ++j) out(i, j) = s * a(i, j);
  return out;
}

std::vector<double> Matrix::apply(std::span<const double> x) const {
  MMIR_EXPECTS(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) y[i] = dot(row(i), x);
  return y;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  MMIR_EXPECTS(a.rows() == a.cols());
  MMIR_EXPECTS(b.size() == a.rows());
  const std::size_t n = a.rows();
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) throw Error("cholesky_solve: matrix is not positive definite");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward solve L y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Back solve L^T x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

std::vector<double> gaussian_solve(Matrix a, std::vector<double> b) {
  MMIR_EXPECTS(a.rows() == a.cols());
  MMIR_EXPECTS(b.size() == a.rows());
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) throw Error("gaussian_solve: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

double dot(std::span<const double> a, std::span<const double> b) {
  MMIR_EXPECTS(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace mmir
