#include "util/rng.hpp"

#include <cmath>

namespace mmir {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 uniform bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling.
  if (n == 0) return 0;
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next_u64()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

int Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; clamps at zero.
  const double sample = normal(mean, std::sqrt(mean));
  return sample < 0.0 ? 0 : static_cast<int>(sample + 0.5);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace mmir
