#include "knowledge/strata.hpp"

#include <algorithm>

#include "bayes/fuzzy.hpp"
#include "sproc/brute.hpp"
#include "sproc/fast_sproc.hpp"
#include "sproc/sproc.hpp"
#include "util/topk.hpp"

namespace mmir {

CartesianQuery riverbed_query(const WellLog& well, const RiverbedRule& rule) {
  MMIR_EXPECTS(!well.layers.empty());
  static constexpr Lithology kWanted[3] = {Lithology::kShale, Lithology::kSandstone,
                                           Lithology::kSiltstone};

  const Membership gamma_high =
      ramp_up(rule.gamma_threshold_api - rule.gamma_softness_api,
              rule.gamma_threshold_api + rule.gamma_softness_api);
  const Membership thick_enough = ramp_up(0.0, rule.min_thickness_ft);
  const Membership small_gap = ramp_down(0.0, rule.max_gap_ft);

  CartesianQuery query;
  query.components = 3;
  query.library_size = well.layers.size();
  query.unary = [&well, gamma_high, thick_enough](std::size_t m, std::uint32_t j) {
    const LogLayer& layer = well.layers[j];
    if (layer.lithology != kWanted[m]) return 0.0;
    // Fig. 4's gamma condition singles out the hot (shale) response; clean
    // sandstone/siltstone run low-API, so only component 0 grades gamma.
    return fuzzy_and_min(gamma_high(m == 0 ? layer.gamma_api : 100.0),
                         thick_enough(layer.thickness_ft));
  };
  query.binary = [&well, small_gap](std::size_t, std::uint32_t i, std::uint32_t j) {
    const LogLayer& upper = well.layers[i];
    const LogLayer& lower = well.layers[j];
    const double upper_bottom = upper.top_ft + upper.thickness_ft;
    if (lower.top_ft < upper_bottom) return 0.0;  // must be strictly below
    return small_gap(lower.top_ft - upper_bottom);
  };
  return query;
}

std::vector<WellMatch> find_riverbeds(const WellLogArchive& archive, std::size_t k,
                                      SprocEngine engine, CostMeter& meter,
                                      const RiverbedRule& rule) {
  MMIR_EXPECTS(k > 0);
  TopK<WellMatch> top(k);
  for (const WellLog& well : archive.wells) {
    if (well.layers.empty()) continue;
    const CartesianQuery query = riverbed_query(well, rule);
    std::vector<CompositeMatch> matches;
    switch (engine) {
      case SprocEngine::kBruteForce:
        matches = brute_force_top_k(query, 1, meter);
        break;
      case SprocEngine::kDynamicProgramming:
        matches = sproc_top_k(query, 1, meter);
        break;
      case SprocEngine::kThreshold:
        matches = fast_sproc_top_k(query, 1, meter);
        break;
    }
    if (!matches.empty() && matches.front().score > 0.0) {
      top.offer(matches.front().score, WellMatch{well.id, std::move(matches.front())});
    }
  }
  std::vector<WellMatch> out;
  for (auto& entry : top.take_sorted()) out.push_back(std::move(entry.item));
  return out;
}

}  // namespace mmir
