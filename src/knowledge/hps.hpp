#pragma once
// The Hantavirus Pulmonary Syndrome knowledge model of paper Figs. 2–3:
// high-risk houses are "houses, surrounded by bushes, with a weather pattern
// of a raining season followed by a dry season."
//
// The Bayesian network transcribes Fig. 3:
//
//     house   bushes        raining_season   dry_season
//        \     /                  \            /
//     house_surrounded_by_bushes   wet_then_dry
//                   \                /
//                    --- high_risk --
//
// Evidence is multi-modal: land-cover raster cells supply house/bush nodes,
// the regional weather series supplies the season nodes, and the posterior
// P(high_risk | evidence) ranks candidate locations.

#include <cstdint>
#include <vector>

#include "bayes/bayesnet.hpp"
#include "data/scene.hpp"
#include "data/weather.hpp"
#include "util/cost.hpp"

namespace mmir {

/// Variable names in the network returned by hps_house_network().
inline constexpr const char* kHpsHouse = "house";
inline constexpr const char* kHpsBushes = "bushes";
inline constexpr const char* kHpsRainSeason = "raining_season";
inline constexpr const char* kHpsDrySeason = "dry_season";
inline constexpr const char* kHpsSurrounded = "house_surrounded_by_bushes";
inline constexpr const char* kHpsWetThenDry = "wet_then_dry";
inline constexpr const char* kHpsHighRisk = "high_risk";

/// Builds the Fig. 3 network with expert-knowledge CPTs (all binary nodes).
[[nodiscard]] BayesNet hps_house_network();

/// Detects the "raining season followed by a dry season" pattern: a window of
/// `season_days` whose wet-day fraction exceeds `wet_fraction`, followed
/// (anywhere later) by a window whose wet-day fraction is below
/// `dry_fraction`.  Returns the two season flags.
struct SeasonPattern {
  bool had_rain_season = false;
  bool had_dry_season_after = false;
};
[[nodiscard]] SeasonPattern detect_seasons(const WeatherSeries& series,
                                           std::size_t season_days = 60,
                                           double wet_fraction = 0.4,
                                           double dry_fraction = 0.12);

/// One candidate location with its inferred risk.
struct HouseRisk {
  std::size_t x = 0;
  std::size_t y = 0;
  double probability = 0.0;  ///< P(high_risk = 1 | evidence)
};

/// Ranks the k most at-risk house cells of the scene under the regional
/// weather series (best first).  `bush_radius` is the neighbourhood (in
/// cells) inspected for the "surrounded by bushes" evidence; a cell counts as
/// bushy when the bush fraction in that window exceeds `bush_fraction`.
[[nodiscard]] std::vector<HouseRisk> rank_high_risk_houses(const Scene& scene,
                                                           const WeatherSeries& weather,
                                                           std::size_t k, CostMeter& meter,
                                                           std::size_t bush_radius = 3,
                                                           double bush_fraction = 0.25);

}  // namespace mmir
