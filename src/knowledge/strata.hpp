#pragma once
// The geology knowledge model of paper Fig. 4: "riverbed consists of shale,
// on top of sandstones, on top of siltstones, adjacent, < 10 ft, and the
// Gamma ray of these region is higher than 45."
//
// The rule compiles to a 3-component fuzzy Cartesian query over a well's
// layer stack: unary degrees grade lithology identity and the gamma-ray
// threshold (soft ramp around 45 API); binary degrees grade "directly above
// with a gap under 10 ft".  Any of the SPROC processors evaluates the query;
// archive-level retrieval ranks wells by their best-scoring match.

#include <cstdint>
#include <vector>

#include "data/welllog.hpp"
#include "sproc/query.hpp"

namespace mmir {

/// Tuning knobs of the riverbed rule (defaults transcribe Fig. 4).
struct RiverbedRule {
  double gamma_threshold_api = 45.0;  ///< "gamma ray higher than 45"
  double gamma_softness_api = 10.0;   ///< ramp width around the threshold
  double max_gap_ft = 10.0;           ///< "adjacent, < 10 ft"
  double min_thickness_ft = 2.0;      ///< layers thinner than this fade out
};

/// Compiles the rule into a Cartesian query over `well`'s layers
/// (components: 0 = shale, 1 = sandstone, 2 = siltstone, top-down).
/// The well must outlive the query (the closures capture a reference).
[[nodiscard]] CartesianQuery riverbed_query(const WellLog& well, const RiverbedRule& rule = {});

/// Which SPROC processor evaluates the per-well query.
enum class SprocEngine { kBruteForce, kDynamicProgramming, kThreshold };

/// A well together with its best riverbed match.
struct WellMatch {
  std::size_t well_id = 0;
  CompositeMatch match;  ///< layer indices per component + fuzzy score
};

/// Ranks the k wells with the strongest riverbed pattern (best first).
/// Wells with score 0 are omitted.
[[nodiscard]] std::vector<WellMatch> find_riverbeds(const WellLogArchive& archive, std::size_t k,
                                                    SprocEngine engine, CostMeter& meter,
                                                    const RiverbedRule& rule = {});

}  // namespace mmir
