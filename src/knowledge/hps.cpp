#include "knowledge/hps.hpp"

#include <algorithm>

#include "util/topk.hpp"

namespace mmir {

BayesNet hps_house_network() {
  BayesNet net;
  const std::size_t house = net.add_variable(kHpsHouse, 2);
  const std::size_t bushes = net.add_variable(kHpsBushes, 2);
  const std::size_t rain = net.add_variable(kHpsRainSeason, 2);
  const std::size_t dry = net.add_variable(kHpsDrySeason, 2);
  const std::size_t surrounded = net.add_variable(kHpsSurrounded, 2, {house, bushes});
  const std::size_t wet_dry = net.add_variable(kHpsWetThenDry, 2, {rain, dry});
  const std::size_t risk = net.add_variable(kHpsHighRisk, 2, {surrounded, wet_dry});

  // Priors (typical rural scene / climate frequencies).
  net.set_cpt(house, {0.9, 0.1});
  net.set_cpt(bushes, {0.6, 0.4});
  net.set_cpt(rain, {0.45, 0.55});
  net.set_cpt(dry, {0.35, 0.65});

  // surrounded = house AND bushes, with small observation leakage: a house in
  // partial scrub occasionally qualifies.
  net.set_cpt(surrounded, {
                              // house=0,bushes=0 -> P(surrounded = 0,1)
                              1.00, 0.00,
                              // house=0,bushes=1
                              1.00, 0.00,
                              // house=1,bushes=0
                              0.95, 0.05,
                              // house=1,bushes=1
                              0.10, 0.90,
                          });
  // wet_then_dry = raining season AND subsequent dry season (noisy AND).
  net.set_cpt(wet_dry, {
                           1.00, 0.00,  // rain=0,dry=0
                           0.97, 0.03,  // rain=0,dry=1
                           0.95, 0.05,  // rain=1,dry=0
                           0.15, 0.85,  // rain=1,dry=1
                       });
  // The epidemiological core: rodent habitat (bushy house) plus the food-
  // pulse weather pattern drive the outbreak risk.
  net.set_cpt(risk, {
                        0.99, 0.01,  // surrounded=0, wet_dry=0
                        0.90, 0.10,  // surrounded=0, wet_dry=1
                        0.80, 0.20,  // surrounded=1, wet_dry=0
                        0.15, 0.85,  // surrounded=1, wet_dry=1
                    });
  return net;
}

SeasonPattern detect_seasons(const WeatherSeries& series, std::size_t season_days,
                             double wet_fraction, double dry_fraction) {
  MMIR_EXPECTS(season_days >= 2);
  SeasonPattern pattern;
  if (series.size() < season_days) return pattern;

  // Sliding wet-day count over season-length windows.
  std::size_t wet_days = 0;
  for (std::size_t i = 0; i < season_days; ++i) wet_days += series[i].rained() ? 1 : 0;
  long rain_season_end = -1;
  const auto window_count = series.size() - season_days + 1;
  for (std::size_t start = 0;; ++start) {
    const double fraction = static_cast<double>(wet_days) / static_cast<double>(season_days);
    if (fraction >= wet_fraction && rain_season_end < 0) {
      pattern.had_rain_season = true;
      rain_season_end = static_cast<long>(start + season_days);
    }
    if (fraction <= dry_fraction && rain_season_end >= 0 &&
        static_cast<long>(start) >= rain_season_end) {
      pattern.had_dry_season_after = true;
      break;
    }
    if (start + 1 >= window_count) break;
    wet_days -= series[start].rained() ? 1 : 0;
    wet_days += series[start + season_days].rained() ? 1 : 0;
  }
  return pattern;
}

std::vector<HouseRisk> rank_high_risk_houses(const Scene& scene, const WeatherSeries& weather,
                                             std::size_t k, CostMeter& meter,
                                             std::size_t bush_radius, double bush_fraction) {
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  BayesNet net = hps_house_network();
  const std::size_t house_var = net.find(kHpsHouse);
  const std::size_t bushes_var = net.find(kHpsBushes);
  const std::size_t rain_var = net.find(kHpsRainSeason);
  const std::size_t dry_var = net.find(kHpsDrySeason);
  const std::size_t risk_var = net.find(kHpsHighRisk);

  // Regional weather evidence is shared by every cell.
  const SeasonPattern seasons = detect_seasons(weather);

  TopK<HouseRisk> top(k);
  const double house_label = static_cast<double>(LandCover::kHouse);
  const double bush_label = static_cast<double>(LandCover::kBush);
  const std::size_t window = 2 * bush_radius + 1;
  for (std::size_t y = 0; y < scene.height; ++y) {
    for (std::size_t x = 0; x < scene.width; ++x) {
      if (scene.landcover.cell(x, y) != house_label) continue;
      const std::size_t x0 = x >= bush_radius ? x - bush_radius : 0;
      const std::size_t y0 = y >= bush_radius ? y - bush_radius : 0;
      const double fraction = scene.landcover.window_fraction(x0, y0, window, window, bush_label);
      meter.add_points(window * window);

      std::map<std::size_t, std::size_t> evidence;
      evidence[house_var] = 1;
      evidence[bushes_var] = fraction >= bush_fraction ? 1 : 0;
      evidence[rain_var] = seasons.had_rain_season ? 1 : 0;
      evidence[dry_var] = seasons.had_dry_season_after ? 1 : 0;
      const auto posterior = net.posterior(risk_var, evidence, meter);
      // The bush fraction breaks ties among cells with identical evidence so
      // the ranking is stable and favours the densest habitat.
      top.offer(posterior[1] + 1e-6 * fraction, HouseRisk{x, y, posterior[1]});
    }
  }
  std::vector<HouseRisk> out;
  for (auto& entry : top.take_sorted()) out.push_back(entry.item);
  return out;
}

}  // namespace mmir
