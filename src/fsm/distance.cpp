#include "fsm/distance.hpp"

#include <vector>

namespace mmir {

double bounded_language_distance(const Dfa& a, const Dfa& b, std::size_t max_len) {
  MMIR_EXPECTS(a.alphabet_size() == b.alphabet_size());
  MMIR_EXPECTS(max_len >= 1);
  const std::size_t alphabet = a.alphabet_size();
  const std::size_t nb = b.state_count();

  // counts[qa * nb + qb] = number of strings of the current length driving
  // (a, b) into (qa, qb).  Doubles avoid overflow for alphabet^len.
  std::vector<double> counts(a.state_count() * nb, 0.0);
  counts[a.start_state() * nb + b.start_state()] = 1.0;

  double total_distance = 0.0;
  for (std::size_t len = 1; len <= max_len; ++len) {
    std::vector<double> next(counts.size(), 0.0);
    for (std::size_t qa = 0; qa < a.state_count(); ++qa) {
      for (std::size_t qb = 0; qb < nb; ++qb) {
        const double c = counts[qa * nb + qb];
        if (c == 0.0) continue;
        for (std::size_t s = 0; s < alphabet; ++s) {
          const std::size_t na = a.step(qa, static_cast<std::uint8_t>(s));
          const std::size_t nb_state = b.step(qb, static_cast<std::uint8_t>(s));
          next[na * nb + nb_state] += c;
        }
      }
    }
    counts = std::move(next);

    double disagree = 0.0;
    double total = 0.0;
    for (std::size_t qa = 0; qa < a.state_count(); ++qa) {
      for (std::size_t qb = 0; qb < nb; ++qb) {
        const double c = counts[qa * nb + qb];
        if (c == 0.0) continue;
        total += c;
        if (a.is_accepting(qa) != b.is_accepting(qb)) disagree += c;
      }
    }
    total_distance += total > 0.0 ? disagree / total : 0.0;
  }
  return total_distance / static_cast<double>(max_len);
}

Dfa markov_fsm_from_sequence(std::span<const std::uint8_t> sequence, std::size_t alphabet,
                             std::uint8_t accept_symbol, std::size_t min_count) {
  MMIR_EXPECTS(alphabet >= 2);
  MMIR_EXPECTS(accept_symbol < alphabet);
  MMIR_EXPECTS(min_count >= 1);

  // Count observed bigrams.
  std::vector<std::size_t> bigram(alphabet * alphabet, 0);
  for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
    MMIR_EXPECTS(sequence[i] < alphabet && sequence[i + 1] < alphabet);
    ++bigram[sequence[i] * alphabet + sequence[i + 1]];
  }

  // States: one per symbol, plus start (= alphabet) and dead (= alphabet+1).
  const std::size_t start = alphabet;
  const std::size_t dead = alphabet + 1;
  Dfa dfa(alphabet + 2, alphabet, start);
  for (std::size_t s = 0; s < alphabet; ++s) {
    dfa.set_transition(start, static_cast<std::uint8_t>(s), s);  // first symbol always enters
    dfa.set_transition(dead, static_cast<std::uint8_t>(s), dead);
    for (std::size_t t = 0; t < alphabet; ++t) {
      const bool observed = bigram[s * alphabet + t] >= min_count;
      dfa.set_transition(s, static_cast<std::uint8_t>(t), observed ? t : dead);
    }
  }
  dfa.set_accepting(accept_symbol);
  return dfa;
}

}  // namespace mmir
