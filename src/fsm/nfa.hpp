#pragma once
// Nondeterministic finite automata with epsilon transitions, a combinator
// builder, and subset-construction determinization.
//
// §2.2 notes that "finite state machines have been used intensively for
// compiler design [and] natural language understanding"; this module supplies
// that classical machinery so finite-state *queries* can be authored as
// patterns (concat / union / star / repeat) and compiled to the Dfa engine
// that the matcher and the gram index consume.

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "fsm/dfa.hpp"

namespace mmir {

/// Fragment handle produced by NfaBuilder combinators.
struct NfaFragment {
  std::size_t entry = 0;
  std::size_t exit = 0;
};

/// Thompson-construction NFA builder over a fixed alphabet.
class NfaBuilder {
 public:
  explicit NfaBuilder(std::size_t alphabet);

  /// Fragment matching exactly one occurrence of `symbol`.
  [[nodiscard]] NfaFragment symbol(std::uint8_t s);
  /// Fragment matching any single symbol from the set.
  [[nodiscard]] NfaFragment any_of(std::initializer_list<std::uint8_t> symbols);
  /// Fragment matching any single symbol of the alphabet.
  [[nodiscard]] NfaFragment any();
  [[nodiscard]] NfaFragment concat(NfaFragment a, NfaFragment b);
  [[nodiscard]] NfaFragment alternate(NfaFragment a, NfaFragment b);
  /// Kleene star (zero or more).
  [[nodiscard]] NfaFragment star(NfaFragment a);
  /// One or more.
  [[nodiscard]] NfaFragment plus(NfaFragment a);
  /// Exactly n copies (n >= 1).
  [[nodiscard]] NfaFragment repeat(NfaFragment a, std::size_t n);
  /// n or more copies.
  [[nodiscard]] NfaFragment at_least(NfaFragment a, std::size_t n);

  /// Determinizes the fragment via subset construction.  When
  /// `match_anywhere` is true the pattern is wrapped as .*(pattern), so the
  /// DFA accepts every prefix that *ends* with a match — the windowed
  /// semantics the series matcher needs.
  [[nodiscard]] Dfa to_dfa(NfaFragment fragment, bool match_anywhere = false);

 private:
  std::size_t new_state();
  void add_edge(std::size_t from, std::uint8_t symbol, std::size_t to);
  void add_epsilon(std::size_t from, std::size_t to);
  /// Deep-copies a fragment's subgraph (for repeat/at_least).
  [[nodiscard]] NfaFragment clone(NfaFragment a);
  [[nodiscard]] std::vector<std::size_t> epsilon_closure(std::vector<std::size_t> states) const;

  struct Edge {
    std::uint8_t symbol;  // kEpsilon for epsilon edges
    std::size_t to;
  };
  static constexpr std::uint8_t kEpsilon = 0xff;

  std::size_t alphabet_;
  std::vector<std::vector<Edge>> states_;
};

}  // namespace mmir
