#include "fsm/dfa.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace mmir {

Dfa::Dfa(std::size_t states, std::size_t alphabet, std::size_t start)
    : states_(states),
      alphabet_(alphabet),
      start_(start),
      table_(states * alphabet, start),
      accepting_(states, false) {
  MMIR_EXPECTS(states > 0);
  MMIR_EXPECTS(alphabet > 0 && alphabet <= 16);
  MMIR_EXPECTS(start < states);
}

void Dfa::set_transition(std::size_t state, std::uint8_t symbol, std::size_t next) {
  MMIR_EXPECTS(state < states_ && symbol < alphabet_ && next < states_);
  table_[state * alphabet_ + symbol] = next;
}

void Dfa::set_accepting(std::size_t state, bool accepting) {
  MMIR_EXPECTS(state < states_);
  accepting_[state] = accepting;
}

std::size_t Dfa::run(std::span<const std::uint8_t> input) const {
  std::size_t state = start_;
  for (std::uint8_t symbol : input) state = step(state, symbol);
  return state;
}

bool Dfa::accepts(std::span<const std::uint8_t> input) const {
  return is_accepting(run(input));
}

std::vector<std::size_t> Dfa::accept_positions(std::span<const std::uint8_t> input,
                                               CostMeter& meter) const {
  std::vector<std::size_t> positions;
  std::size_t state = start_;
  for (std::size_t i = 0; i < input.size(); ++i) {
    state = step(state, input[i]);
    if (accepting_[state]) positions.push_back(i);
  }
  meter.add_ops(input.size());
  meter.add_points(input.size());
  return positions;
}

std::vector<std::size_t> Dfa::reachable_states() const {
  std::vector<bool> seen(states_, false);
  std::vector<std::size_t> stack{start_};
  seen[start_] = true;
  std::vector<std::size_t> out;
  while (!stack.empty()) {
    const std::size_t state = stack.back();
    stack.pop_back();
    out.push_back(state);
    for (std::size_t symbol = 0; symbol < alphabet_; ++symbol) {
      const std::size_t next = table_[state * alphabet_ + symbol];
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return out;
}

Dfa Dfa::minimized() const {
  // Restrict to reachable states.
  const auto reachable = reachable_states();
  std::vector<long> dense(states_, -1);
  for (std::size_t i = 0; i < reachable.size(); ++i) dense[reachable[i]] = static_cast<long>(i);
  const std::size_t m = reachable.size();

  // Moore refinement: start from the accepting / non-accepting split and
  // refine by transition-class signatures.  Signatures include the state's
  // own class, so each round only ever splits classes; the partition is
  // stable exactly when the class count stops growing.
  std::vector<std::size_t> cls(m);
  for (std::size_t i = 0; i < m; ++i) cls[i] = accepting_[reachable[i]] ? 1 : 0;
  std::size_t class_total = std::set<std::size_t>(cls.begin(), cls.end()).size();
  for (;;) {
    std::map<std::vector<std::size_t>, std::size_t> interned;
    std::vector<std::size_t> next_cls(m);
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<std::size_t> signature;
      signature.reserve(alphabet_ + 1);
      signature.push_back(cls[i]);
      for (std::size_t s = 0; s < alphabet_; ++s) {
        const std::size_t succ = table_[reachable[i] * alphabet_ + s];
        signature.push_back(cls[static_cast<std::size_t>(dense[succ])]);
      }
      const auto [it, inserted] = interned.emplace(std::move(signature), interned.size());
      next_cls[i] = it->second;
    }
    const std::size_t next_total = interned.size();
    cls = std::move(next_cls);
    if (next_total == class_total) break;
    class_total = next_total;
  }

  const std::size_t class_count = 1 + *std::max_element(cls.begin(), cls.end());
  Dfa out(class_count, alphabet_, cls[static_cast<std::size_t>(dense[start_])]);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t state = reachable[i];
    for (std::size_t s = 0; s < alphabet_; ++s) {
      const std::size_t succ = table_[state * alphabet_ + s];
      out.set_transition(cls[i], static_cast<std::uint8_t>(s),
                         cls[static_cast<std::size_t>(dense[succ])]);
    }
    if (accepting_[state]) out.set_accepting(cls[i]);
  }
  return out;
}

std::vector<SymbolSeq> Dfa::accepting_grams(std::size_t n) const {
  MMIR_EXPECTS(n >= 1 && n <= 8);
  const auto reachable = reachable_states();
  std::vector<SymbolSeq> grams;
  SymbolSeq gram(n, 0);
  // Enumerate alphabet^n strings in lexicographic order.
  const auto total = static_cast<std::uint64_t>(std::pow(static_cast<double>(alphabet_),
                                                         static_cast<double>(n)) + 0.5);
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t rest = code;
    for (std::size_t i = n; i-- > 0;) {
      gram[i] = static_cast<std::uint8_t>(rest % alphabet_);
      rest /= alphabet_;
    }
    for (std::size_t q : reachable) {
      std::size_t state = q;
      for (std::uint8_t symbol : gram) state = step(state, symbol);
      if (accepting_[state]) {
        grams.push_back(gram);
        break;
      }
    }
  }
  return grams;
}

}  // namespace mmir
