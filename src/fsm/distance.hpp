#pragma once
// Distances between finite-state models (§3: "when the finite state machine
// extracted from the data is slightly different from the target finite state
// machine, it is also possible to define a distance between these two finite
// state machines based on their similarities").
//
// Two complementary notions:
//  * bounded_language_distance — behavioural: the average fraction of strings
//    of each length 1..L that the two machines classify differently, computed
//    exactly on the product automaton (no sampling).
//  * extraction: markov_fsm_from_sequence builds the empirical
//    symbol-transition machine of an observed stream, the "finite state
//    machine extracted from the data" that gets compared against the target.

#include <span>

#include "fsm/dfa.hpp"

namespace mmir {

/// Exact behavioural distance in [0, 1]: mean over lengths 1..max_len of
/// (strings classified differently) / (alphabet^length).  Both machines must
/// share the alphabet.  Cost: O(max_len · |A| · states_a · states_b).
[[nodiscard]] double bounded_language_distance(const Dfa& a, const Dfa& b, std::size_t max_len);

/// Empirical first-order machine extracted from a symbol stream: one state
/// per symbol, transition s -> t present when "t follows s" was observed at
/// least `min_count` times; unobserved transitions go to a dead state.
/// State `accept_symbol` is accepting, so the machine accepts streams ending
/// in that symbol through observed transitions only.
[[nodiscard]] Dfa markov_fsm_from_sequence(std::span<const std::uint8_t> sequence,
                                           std::size_t alphabet, std::uint8_t accept_symbol,
                                           std::size_t min_count = 1);

}  // namespace mmir
