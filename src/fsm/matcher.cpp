#include "fsm/matcher.hpp"

#include "util/topk.hpp"

namespace mmir {

namespace {

/// Scores one region; returns false when the region never accepts.
bool match_region(const SymbolSeq& seq, const Dfa& model, std::uint32_t region, FsmHit& hit,
                  CostMeter& meter) {
  const auto positions = model.accept_positions(seq, meter);
  if (positions.empty()) return false;
  hit.region = region;
  hit.accept_days = positions.size();
  hit.first_accept = positions.front();
  // More accepting days ranks higher; among equals, earlier onset wins.
  hit.score = static_cast<double>(positions.size()) +
              1.0 / (2.0 + static_cast<double>(positions.front()));
  return true;
}

std::vector<FsmHit> rank(std::vector<FsmHit> hits, std::size_t k) {
  TopK<FsmHit> top(k);
  for (auto& hit : hits) top.offer(hit.score, hit);
  std::vector<FsmHit> out;
  for (auto& entry : top.take_sorted()) out.push_back(entry.item);
  return out;
}

}  // namespace

std::vector<FsmHit> fsm_scan_top_k(std::span<const SymbolSeq> sequences, const Dfa& model,
                                   std::size_t k, CostMeter& meter) {
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  std::vector<FsmHit> hits;
  for (std::size_t r = 0; r < sequences.size(); ++r) {
    FsmHit hit;
    if (match_region(sequences[r], model, static_cast<std::uint32_t>(r), hit, meter)) {
      hits.push_back(hit);
    }
  }
  return rank(std::move(hits), k);
}

std::vector<FsmHit> fsm_indexed_top_k(std::span<const SymbolSeq> sequences, const Dfa& model,
                                      const GramIndex& index, std::size_t k, CostMeter& meter) {
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  const auto grams = model.accepting_grams(index.gram_length());
  const auto candidates = index.candidates_any(grams, meter);

  std::vector<FsmHit> hits;
  for (std::uint32_t r : candidates) {
    FsmHit hit;
    if (match_region(sequences[r], model, r, hit, meter)) hits.push_back(hit);
  }
  // Sequences too short for the index were never posted; simulate them too.
  for (std::size_t r = 0; r < sequences.size(); ++r) {
    if (sequences[r].size() < index.gram_length()) {
      FsmHit hit;
      if (match_region(sequences[r], model, static_cast<std::uint32_t>(r), hit, meter)) {
        hits.push_back(hit);
      }
    }
  }
  meter.add_pruned(sequences.size() - candidates.size());
  return rank(std::move(hits), k);
}

}  // namespace mmir
