#pragma once
// The fire-ants finite-state model of paper Fig. 1.
//
// "the fire ants of a region will fly if the region has some rain fall, and
//  then remain dry for at least three days.  In addition, the temperature
//  needs to reach 25 degrees Celsius or higher."
//
// Multi-modal observations (rain_mm, temp_c) discretize to a 3-symbol
// alphabet; the DFA below transcribes the figure's states and edges,
// including the Dry-2 → Fly edge on a hot third dry day and the Dry-3+
// self-loop on cool dry days.

#include "data/weather.hpp"
#include "fsm/dfa.hpp"
#include "index/gram_index.hpp"

namespace mmir {

/// Weather symbols for the fire-ants model.
enum WeatherSymbol : std::uint8_t {
  kRain = 0,     ///< rained today
  kDryHot = 1,   ///< no rain, T >= hot threshold
  kDryCool = 2,  ///< no rain, T < hot threshold
};

inline constexpr std::size_t kWeatherAlphabet = 3;
inline constexpr double kDefaultHotThresholdC = 25.0;

/// Fig. 1 state ids (exposed for tests and for reading traces).
enum FireAntState : std::size_t {
  kStart = 0,    ///< before any rain has been seen
  kRainSt = 1,   ///< raining / just rained
  kDry1 = 2,     ///< dry for one day
  kDry2 = 3,     ///< dry for two days
  kDry3 = 4,     ///< dry for three days or more (cool)
  kFly = 5,      ///< fire ants fly (accepting)
};

/// Builds the Fig. 1 DFA over the weather alphabet.
[[nodiscard]] Dfa fire_ants_model();

/// Discretizes a daily series into weather symbols.
[[nodiscard]] SymbolSeq discretize_weather(const WeatherSeries& series,
                                           double hot_threshold_c = kDefaultHotThresholdC);

/// Discretizes every region of an archive.
[[nodiscard]] std::vector<SymbolSeq> discretize_archive(
    const WeatherArchive& archive, double hot_threshold_c = kDefaultHotThresholdC);

}  // namespace mmir
