#pragma once
// Top-K retrieval of finite-state model matches over a symbol-stream archive
// (§3: "the finite state model is used to locate the top-K data patterns that
// satisfy a model that can be described by a finite state machine").
//
// Regions are ranked by how strongly they satisfy the model: the number of
// days the machine spends in an accepting state, with earlier first
// acceptance breaking ties.  Two execution paths are provided:
//   * fsm_scan_top_k      — simulate every region (the sequential baseline);
//   * fsm_indexed_top_k   — compile the DFA to accepting grams, fetch
//     candidates from the n-gram inverted index, and simulate only those.
// Both return identical rankings; the benchmark measures the work gap.

#include <cstdint>
#include <span>
#include <vector>

#include "fsm/dfa.hpp"
#include "index/gram_index.hpp"
#include "util/cost.hpp"

namespace mmir {

/// One region's match result.
struct FsmHit {
  std::uint32_t region = 0;
  double score = 0.0;             ///< accepting-day count
  std::size_t first_accept = 0;   ///< first accepting position
  std::size_t accept_days = 0;
};

/// Simulates the DFA over every sequence; returns top-k regions (best first).
[[nodiscard]] std::vector<FsmHit> fsm_scan_top_k(std::span<const SymbolSeq> sequences,
                                                 const Dfa& model, std::size_t k,
                                                 CostMeter& meter);

/// Index-pruned variant: only sequences containing at least one accepting
/// gram are simulated.  Exact (no accepted region can lack all grams, since
/// the last `gram_length` symbols before an accept form an accepting gram);
/// sequences shorter than the gram length are simulated unconditionally.
[[nodiscard]] std::vector<FsmHit> fsm_indexed_top_k(std::span<const SymbolSeq> sequences,
                                                    const Dfa& model, const GramIndex& index,
                                                    std::size_t k, CostMeter& meter);

}  // namespace mmir
