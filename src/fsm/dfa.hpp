#pragma once
// Deterministic finite automata over small symbol alphabets — the execution
// engine for the paper's finite-state models (§2.2).
//
// Multi-modal observations (rain, temperature) are discretized into symbols
// by the model's observation mapping (see fire_ants.hpp); the DFA then runs
// over each region's symbol stream.  Besides simulation, the DFA exposes
// `accepting_grams`, the query-compilation hook for the n-gram index: every
// window that drives the machine into an accepting state must end with one of
// those grams, so posting-list lookups prune the archive before simulation.

#include <cstdint>
#include <span>
#include <vector>

#include "index/gram_index.hpp"  // SymbolSeq
#include "util/cost.hpp"
#include "util/error.hpp"

namespace mmir {

class Dfa {
 public:
  /// All transitions initially self-loop on the start state; callers must set
  /// every (state, symbol) pair they rely on.
  Dfa(std::size_t states, std::size_t alphabet, std::size_t start);

  [[nodiscard]] std::size_t state_count() const noexcept { return states_; }
  [[nodiscard]] std::size_t alphabet_size() const noexcept { return alphabet_; }
  [[nodiscard]] std::size_t start_state() const noexcept { return start_; }

  void set_transition(std::size_t state, std::uint8_t symbol, std::size_t next);
  void set_accepting(std::size_t state, bool accepting = true);

  [[nodiscard]] std::size_t step(std::size_t state, std::uint8_t symbol) const {
    MMIR_EXPECTS(state < states_ && symbol < alphabet_);
    return table_[state * alphabet_ + symbol];
  }
  [[nodiscard]] bool is_accepting(std::size_t state) const {
    MMIR_EXPECTS(state < states_);
    return accepting_[state];
  }

  /// Final state after consuming the whole sequence from the start state.
  [[nodiscard]] std::size_t run(std::span<const std::uint8_t> input) const;

  /// True when the full sequence ends in an accepting state.
  [[nodiscard]] bool accepts(std::span<const std::uint8_t> input) const;

  /// Positions i where the machine is in an accepting state after consuming
  /// input[i] (one full pass; charges `meter` one op per symbol).
  [[nodiscard]] std::vector<std::size_t> accept_positions(std::span<const std::uint8_t> input,
                                                          CostMeter& meter) const;

  /// States reachable from the start state.
  [[nodiscard]] std::vector<std::size_t> reachable_states() const;

  /// All length-n symbol strings g such that some reachable state q has
  /// δ*(q, g) accepting — i.e. the possible "last n symbols" of any accepted
  /// prefix.  Used to compile the model into gram-index lookups.  The
  /// enumeration is exhaustive over alphabet^n, so keep n small (<= 8).
  [[nodiscard]] std::vector<SymbolSeq> accepting_grams(std::size_t n) const;

  /// Language-equivalent DFA with the minimum number of states (Moore
  /// partition refinement; unreachable states are dropped).  Useful after
  /// subset construction, whose output is rarely minimal.
  [[nodiscard]] Dfa minimized() const;

 private:
  std::size_t states_;
  std::size_t alphabet_;
  std::size_t start_;
  std::vector<std::size_t> table_;
  std::vector<bool> accepting_;
};

}  // namespace mmir
