#include "fsm/nfa.hpp"

#include <algorithm>
#include <map>

namespace mmir {

NfaBuilder::NfaBuilder(std::size_t alphabet) : alphabet_(alphabet) {
  MMIR_EXPECTS(alphabet > 0 && alphabet <= 16);
}

std::size_t NfaBuilder::new_state() {
  states_.emplace_back();
  return states_.size() - 1;
}

void NfaBuilder::add_edge(std::size_t from, std::uint8_t symbol, std::size_t to) {
  MMIR_EXPECTS(from < states_.size() && to < states_.size());
  MMIR_EXPECTS(symbol < alphabet_);
  states_[from].push_back(Edge{symbol, to});
}

void NfaBuilder::add_epsilon(std::size_t from, std::size_t to) {
  MMIR_EXPECTS(from < states_.size() && to < states_.size());
  states_[from].push_back(Edge{kEpsilon, to});
}

NfaFragment NfaBuilder::symbol(std::uint8_t s) {
  const std::size_t entry = new_state();
  const std::size_t exit = new_state();
  add_edge(entry, s, exit);
  return {entry, exit};
}

NfaFragment NfaBuilder::any_of(std::initializer_list<std::uint8_t> symbols) {
  MMIR_EXPECTS(symbols.size() > 0);
  const std::size_t entry = new_state();
  const std::size_t exit = new_state();
  for (std::uint8_t s : symbols) add_edge(entry, s, exit);
  return {entry, exit};
}

NfaFragment NfaBuilder::any() {
  const std::size_t entry = new_state();
  const std::size_t exit = new_state();
  for (std::size_t s = 0; s < alphabet_; ++s) add_edge(entry, static_cast<std::uint8_t>(s), exit);
  return {entry, exit};
}

NfaFragment NfaBuilder::concat(NfaFragment a, NfaFragment b) {
  add_epsilon(a.exit, b.entry);
  return {a.entry, b.exit};
}

NfaFragment NfaBuilder::alternate(NfaFragment a, NfaFragment b) {
  const std::size_t entry = new_state();
  const std::size_t exit = new_state();
  add_epsilon(entry, a.entry);
  add_epsilon(entry, b.entry);
  add_epsilon(a.exit, exit);
  add_epsilon(b.exit, exit);
  return {entry, exit};
}

NfaFragment NfaBuilder::star(NfaFragment a) {
  const std::size_t entry = new_state();
  const std::size_t exit = new_state();
  add_epsilon(entry, a.entry);
  add_epsilon(entry, exit);
  add_epsilon(a.exit, a.entry);
  add_epsilon(a.exit, exit);
  return {entry, exit};
}

NfaFragment NfaBuilder::plus(NfaFragment a) {
  const NfaFragment rest = star(clone(a));
  return concat(a, rest);
}

NfaFragment NfaBuilder::repeat(NfaFragment a, std::size_t n) {
  MMIR_EXPECTS(n >= 1);
  NfaFragment result = a;
  for (std::size_t i = 1; i < n; ++i) result = concat(result, clone(a));
  return result;
}

NfaFragment NfaBuilder::at_least(NfaFragment a, std::size_t n) {
  MMIR_EXPECTS(n >= 1);
  NfaFragment required = repeat(a, n);
  return concat(required, star(clone(a)));
}

NfaFragment NfaBuilder::clone(NfaFragment a) {
  // Copy the subgraph reachable from a.entry.  Fragments must be "fresh"
  // (not yet composed into a larger pattern) for the reachable set to be
  // exactly the fragment — the builder API is designed for linear use.
  std::map<std::size_t, std::size_t> remap;
  std::vector<std::size_t> stack{a.entry};
  remap[a.entry] = new_state();
  while (!stack.empty()) {
    const std::size_t old_state = stack.back();
    stack.pop_back();
    for (const Edge& e : states_[old_state]) {
      if (remap.find(e.to) == remap.end()) {
        remap[e.to] = new_state();
        stack.push_back(e.to);
      }
    }
  }
  if (remap.find(a.exit) == remap.end()) remap[a.exit] = new_state();
  for (const auto& [old_state, new_id] : remap) {
    for (const Edge& e : states_[old_state]) {
      states_[new_id].push_back(Edge{e.symbol, remap.at(e.to)});
    }
  }
  return {remap.at(a.entry), remap.at(a.exit)};
}

std::vector<std::size_t> NfaBuilder::epsilon_closure(std::vector<std::size_t> states) const {
  std::vector<bool> seen(states_.size(), false);
  std::vector<std::size_t> stack = states;
  for (std::size_t s : states) seen[s] = true;
  while (!stack.empty()) {
    const std::size_t s = stack.back();
    stack.pop_back();
    for (const Edge& e : states_[s]) {
      if (e.symbol == kEpsilon && !seen[e.to]) {
        seen[e.to] = true;
        states.push_back(e.to);
        stack.push_back(e.to);
      }
    }
  }
  std::sort(states.begin(), states.end());
  return states;
}

Dfa NfaBuilder::to_dfa(NfaFragment fragment, bool match_anywhere) {
  std::size_t start_nfa = fragment.entry;
  if (match_anywhere) {
    // .* prefix: a fresh start state that loops on every symbol and can
    // epsilon-enter the pattern at any time.
    const std::size_t loop = new_state();
    for (std::size_t s = 0; s < alphabet_; ++s) add_edge(loop, static_cast<std::uint8_t>(s), loop);
    add_epsilon(loop, fragment.entry);
    start_nfa = loop;
  }

  std::map<std::vector<std::size_t>, std::size_t> dfa_ids;
  std::vector<std::vector<std::size_t>> subsets;
  const auto intern = [&](std::vector<std::size_t> subset) {
    const auto it = dfa_ids.find(subset);
    if (it != dfa_ids.end()) return it->second;
    const std::size_t id = subsets.size();
    dfa_ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    return id;
  };

  const std::size_t start_id = intern(epsilon_closure({start_nfa}));
  std::vector<std::vector<std::size_t>> transitions;  // [dfa_state][symbol]
  for (std::size_t current = 0; current < subsets.size(); ++current) {
    transitions.emplace_back(alphabet_, 0);
    for (std::size_t symbol = 0; symbol < alphabet_; ++symbol) {
      std::vector<std::size_t> next;
      for (std::size_t nfa_state : subsets[current]) {
        for (const Edge& e : states_[nfa_state]) {
          if (e.symbol == static_cast<std::uint8_t>(symbol)) next.push_back(e.to);
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      transitions[current][symbol] = intern(epsilon_closure(std::move(next)));
    }
  }

  Dfa dfa(subsets.size(), alphabet_, start_id);
  for (std::size_t state = 0; state < subsets.size(); ++state) {
    for (std::size_t symbol = 0; symbol < alphabet_; ++symbol) {
      dfa.set_transition(state, static_cast<std::uint8_t>(symbol), transitions[state][symbol]);
    }
    if (std::binary_search(subsets[state].begin(), subsets[state].end(), fragment.exit)) {
      dfa.set_accepting(state);
    }
  }
  return dfa;
}

}  // namespace mmir
