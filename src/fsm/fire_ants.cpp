#include "fsm/fire_ants.hpp"

namespace mmir {

Dfa fire_ants_model() {
  Dfa dfa(6, kWeatherAlphabet, kStart);
  // Before the first rain nothing accumulates.
  dfa.set_transition(kStart, kRain, kRainSt);
  dfa.set_transition(kStart, kDryHot, kStart);
  dfa.set_transition(kStart, kDryCool, kStart);
  // Rain resets the dry counter from anywhere.
  dfa.set_transition(kRainSt, kRain, kRainSt);
  dfa.set_transition(kRainSt, kDryHot, kDry1);
  dfa.set_transition(kRainSt, kDryCool, kDry1);
  dfa.set_transition(kDry1, kRain, kRainSt);
  dfa.set_transition(kDry1, kDryHot, kDry2);
  dfa.set_transition(kDry1, kDryCool, kDry2);
  // Fig. 1: from "dry for two days", a third dry day flies if hot.
  dfa.set_transition(kDry2, kRain, kRainSt);
  dfa.set_transition(kDry2, kDryHot, kFly);
  dfa.set_transition(kDry2, kDryCool, kDry3);
  // "Dry for three days or more": waits for a hot day, loops while cool.
  dfa.set_transition(kDry3, kRain, kRainSt);
  dfa.set_transition(kDry3, kDryHot, kFly);
  dfa.set_transition(kDry3, kDryCool, kDry3);
  // Flying continues on hot dry days; cool days fall back to the dry state.
  dfa.set_transition(kFly, kRain, kRainSt);
  dfa.set_transition(kFly, kDryHot, kFly);
  dfa.set_transition(kFly, kDryCool, kDry3);
  dfa.set_accepting(kFly);
  return dfa;
}

SymbolSeq discretize_weather(const WeatherSeries& series, double hot_threshold_c) {
  SymbolSeq symbols;
  symbols.reserve(series.size());
  for (const DailyWeather& day : series) {
    if (day.rained()) {
      symbols.push_back(kRain);
    } else if (day.temp_c >= hot_threshold_c) {
      symbols.push_back(kDryHot);
    } else {
      symbols.push_back(kDryCool);
    }
  }
  return symbols;
}

std::vector<SymbolSeq> discretize_archive(const WeatherArchive& archive, double hot_threshold_c) {
  std::vector<SymbolSeq> out;
  out.reserve(archive.regions.size());
  for (const WeatherSeries& series : archive.regions) {
    out.push_back(discretize_weather(series, hot_threshold_c));
  }
  return out;
}

}  // namespace mmir
