#include "index/gram_index.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mmir {

const std::vector<std::uint32_t> GramIndex::kEmpty{};

GramIndex::GramIndex(std::span<const SymbolSeq> sequences, std::size_t n, std::size_t alphabet)
    : n_(n), alphabet_(alphabet), sequence_count_(sequences.size()) {
  MMIR_EXPECTS(n >= 1 && n <= 16);
  MMIR_EXPECTS(alphabet >= 2 && alphabet <= 16);
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    const SymbolSeq& seq = sequences[s];
    if (seq.size() < n_) continue;
    for (std::size_t i = 0; i + n_ <= seq.size(); ++i) {
      const std::uint64_t key = pack(std::span<const std::uint8_t>(seq).subspan(i, n_));
      auto& list = postings_[key];
      if (list.empty() || list.back() != static_cast<std::uint32_t>(s)) {
        list.push_back(static_cast<std::uint32_t>(s));
      }
    }
  }
}

std::uint64_t GramIndex::pack(std::span<const std::uint8_t> gram) const {
  MMIR_EXPECTS(gram.size() == n_);
  std::uint64_t key = 0;
  for (std::uint8_t symbol : gram) {
    MMIR_EXPECTS(symbol < alphabet_);
    key = (key << 4) | symbol;
  }
  return key;
}

std::span<const std::uint32_t> GramIndex::postings(std::span<const std::uint8_t> gram) const {
  const auto it = postings_.find(pack(gram));
  return it == postings_.end() ? std::span<const std::uint32_t>(kEmpty)
                               : std::span<const std::uint32_t>(it->second);
}

std::vector<std::uint32_t> GramIndex::candidates_any(std::span<const SymbolSeq> grams,
                                                     CostMeter& meter) const {
  std::vector<std::uint32_t> out;
  for (const SymbolSeq& gram : grams) {
    const auto list = postings(gram);
    meter.add_ops(list.size());
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace mmir
