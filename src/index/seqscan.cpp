#include "index/seqscan.hpp"

#include "util/matrix.hpp"

namespace mmir {

namespace {

std::vector<ScoredId> scan_impl(const TupleSet& points, std::span<const double> weights,
                                std::size_t k, double sign, CostMeter& meter) {
  MMIR_EXPECTS(weights.size() == points.dim());
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  TopK<std::uint32_t> top(k);
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double value = sign * dot(points.row(i), weights);
    top.offer(value, static_cast<std::uint32_t>(i));
  }
  meter.add_points(n);
  meter.add_ops(n * points.dim());
  meter.add_bytes(n * points.dim() * sizeof(double));

  std::vector<ScoredId> out;
  for (auto& entry : top.take_sorted()) {
    out.push_back(ScoredId{entry.item, sign * entry.score});
  }
  return out;
}

}  // namespace

std::vector<ScoredId> scan_top_k(const TupleSet& points, std::span<const double> weights,
                                 std::size_t k, CostMeter& meter) {
  return scan_impl(points, weights, k, 1.0, meter);
}

std::vector<ScoredId> scan_bottom_k(const TupleSet& points, std::span<const double> weights,
                                    std::size_t k, CostMeter& meter) {
  return scan_impl(points, weights, k, -1.0, meter);
}

}  // namespace mmir
