#include "index/kdtree.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/topk.hpp"

namespace mmir {

bool BoundingBox::contains(std::span<const double> p) const noexcept {
  for (std::size_t d = 0; d < lo.size(); ++d) {
    if (p[d] < lo[d] || p[d] > hi[d]) return false;
  }
  return true;
}

bool BoundingBox::intersects(const BoundingBox& other) const noexcept {
  for (std::size_t d = 0; d < lo.size(); ++d) {
    if (hi[d] < other.lo[d] || other.hi[d] < lo[d]) return false;
  }
  return true;
}

double BoundingBox::linear_upper_bound(std::span<const double> w) const noexcept {
  double bound = 0.0;
  for (std::size_t d = 0; d < lo.size(); ++d) bound += w[d] >= 0.0 ? w[d] * hi[d] : w[d] * lo[d];
  return bound;
}

KdTree::KdTree(const TupleSet& points, std::size_t leaf_size) : points_(points) {
  MMIR_EXPECTS(points_.size() > 0);
  MMIR_EXPECTS(leaf_size > 0);
  order_.resize(points_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<std::uint32_t>(i);
  root_ = build(0, static_cast<std::uint32_t>(order_.size()), leaf_size);
}

BoundingBox KdTree::compute_box(std::uint32_t begin, std::uint32_t end) const {
  BoundingBox box;
  box.lo.assign(points_.dim(), std::numeric_limits<double>::infinity());
  box.hi.assign(points_.dim(), -std::numeric_limits<double>::infinity());
  for (std::uint32_t i = begin; i < end; ++i) {
    const auto row = points_.row(order_[i]);
    for (std::size_t d = 0; d < points_.dim(); ++d) {
      box.lo[d] = std::min(box.lo[d], row[d]);
      box.hi[d] = std::max(box.hi[d], row[d]);
    }
  }
  return box;
}

std::int32_t KdTree::build(std::uint32_t begin, std::uint32_t end, std::size_t leaf_size) {
  Node node;
  node.box = compute_box(begin, end);
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);  // placeholder; children filled below

  if (end - begin <= leaf_size) {
    nodes_[static_cast<std::size_t>(id)].begin = begin;
    nodes_[static_cast<std::size_t>(id)].end = end;
    return id;
  }

  // Split on the widest dimension at the median.
  std::size_t axis = 0;
  double widest = -1.0;
  for (std::size_t d = 0; d < points_.dim(); ++d) {
    const double extent = nodes_[static_cast<std::size_t>(id)].box.hi[d] -
                          nodes_[static_cast<std::size_t>(id)].box.lo[d];
    if (extent > widest) {
      widest = extent;
      axis = d;
    }
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) {
                     return points_.row(a)[axis] < points_.row(b)[axis];
                   });
  const std::int32_t left = build(begin, mid, leaf_size);
  const std::int32_t right = build(mid, end, leaf_size);
  nodes_[static_cast<std::size_t>(id)].left = left;
  nodes_[static_cast<std::size_t>(id)].right = right;
  return id;
}

std::vector<std::uint32_t> KdTree::range_query(std::span<const double> lo,
                                               std::span<const double> hi,
                                               CostMeter& meter) const {
  MMIR_EXPECTS(lo.size() == points_.dim() && hi.size() == points_.dim());
  ScopedTimer timer(meter);
  BoundingBox query;
  query.lo.assign(lo.begin(), lo.end());
  query.hi.assign(hi.begin(), hi.end());

  std::vector<std::uint32_t> out;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    const auto ni = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (!node.box.intersects(query)) {
      meter.add_pruned();
      continue;
    }
    if (node.left < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::uint32_t id = order_[i];
        meter.add_points(1);
        if (query.contains(points_.row(id))) out.push_back(id);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ScoredId> KdTree::top_k_linear(std::span<const double> weights, std::size_t k,
                                           CostMeter& meter) const {
  MMIR_EXPECTS(weights.size() == points_.dim());
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);

  struct Frontier {
    double bound;
    std::int32_t node;
    bool operator<(const Frontier& other) const noexcept { return bound < other.bound; }
  };
  std::priority_queue<Frontier> frontier;
  frontier.push({nodes_[static_cast<std::size_t>(root_)].box.linear_upper_bound(weights), root_});

  TopK<std::uint32_t> top(k);
  while (!frontier.empty()) {
    const Frontier f = frontier.top();
    frontier.pop();
    // Once the best outstanding bound cannot beat the k-th best, stop.
    if (top.full() && f.bound <= top.threshold()) {
      meter.add_pruned();
      break;
    }
    const Node& node = nodes_[static_cast<std::size_t>(f.node)];
    if (node.left < 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::uint32_t id = order_[i];
        top.offer(dot(points_.row(id), weights), id);
      }
      meter.add_points(node.end - node.begin);
      meter.add_ops((node.end - node.begin) * points_.dim());
    } else {
      for (std::int32_t child : {node.left, node.right}) {
        frontier.push(
            {nodes_[static_cast<std::size_t>(child)].box.linear_upper_bound(weights), child});
        // Index-node work: reading the child MBR and computing its bound.
        meter.add_ops(points_.dim());
        meter.add_bytes(2 * points_.dim() * sizeof(double));
      }
    }
  }

  std::vector<ScoredId> out;
  for (auto& entry : top.take_sorted()) out.push_back(ScoredId{entry.item, entry.score});
  return out;
}

}  // namespace mmir
