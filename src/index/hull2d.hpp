#pragma once
// 2-D convex hull (Andrew's monotone chain) over indexed point sets.
//
// Used by the Onion index for two-parameter linear models.  The hull is
// computed over a subset of rows of a TupleSet identified by indices, so the
// onion peeler can repeatedly hull the "still alive" points without copying
// coordinates.

#include <cstdint>
#include <span>
#include <vector>

#include "data/tuples.hpp"

namespace mmir {

/// Returns the indices (into `candidates`' values, i.e. row ids of `points`)
/// of the convex-hull vertices of the 2-D rows listed in `candidates`,
/// in counter-clockwise order.  Collinear points on hull edges are NOT
/// included (strict hull), so peeling makes progress on degenerate inputs.
/// Handles n < 3 by returning all distinct input points.
[[nodiscard]] std::vector<std::uint32_t> convex_hull_2d(const TupleSet& points,
                                                        std::span<const std::uint32_t> candidates);

}  // namespace mmir
