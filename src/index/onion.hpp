#pragma once
// The Onion index: convex-hull layering for linear-optimization top-K queries
// (Chang, Bergman, Castelli, Li, Lo, Smith — SIGMOD 2000, cited as [11] and
// quoted in §3.2 of the reproduced paper: 13,000× speedup for top-1, 1,400×
// for top-10 against sequential scan on 3-parameter Gaussian data).
//
// Build: repeatedly peel the convex hull of the remaining points; layer i is
// the vertex set of the i-th hull.  Query: a linear function attains its
// maximum over a point set at a hull vertex, so the j-th best tuple lies in
// the first j layers — a top-K query therefore evaluates only the first K
// layers instead of all N points.
//
// Engineering notes (documented deviations, see DESIGN.md §5):
//  * Peeling depth is bounded by `max_layers`; points never reached by the
//    peel stay in a residual bucket that queries scan only when K exceeds the
//    peeled depth.  Answers are identical to the full peel.
//  * Exact hulls are implemented for dim 2 and 3 (the paper's experiment is
//    3-parameter, so E1 is exact).  For dim > 3 the layers are built by
//    peeling *directional extremes* (argmax over sampled unit directions);
//    the j-th-best-in-j-layers guarantee then becomes probabilistic, so
//    queries are flagged approximate via `exact()` and validated empirically
//    (high recall) in the test suite.

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/query_context.hpp"
#include "data/tuples.hpp"
#include "index/seqscan.hpp"
#include "util/cost.hpp"
#include "util/interval.hpp"
#include "util/result_status.hpp"

namespace mmir {

/// Fault-tolerant Onion query result.  `missed_bound` is the most optimistic
/// score (in the query's ranking direction: largest for top_k, smallest for
/// bottom_k) any unexamined point could achieve — sound via the suffix
/// bounding boxes, independent of hull exactness.
struct OnionTopK {
  std::vector<ScoredId> hits;  ///< best-first, possibly fewer than K
  ResultStatus status = ResultStatus::kComplete;
  double missed_bound = -std::numeric_limits<double>::infinity();
};

struct OnionConfig {
  std::size_t max_layers = 24;        ///< peeling depth bound
  std::size_t direction_samples = 64; ///< only used for dim > 3
  std::uint64_t seed = 17;            ///< direction sampling seed (dim > 3)
};

/// Layered convex-hull index over an immutable TupleSet (which must outlive
/// the index).
class OnionIndex {
 public:
  OnionIndex(const TupleSet& points, OnionConfig config = {});

  /// Number of peeled layers (excluding the residual bucket).
  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
  [[nodiscard]] std::span<const std::uint32_t> layer(std::size_t i) const;
  [[nodiscard]] std::size_t residual_size() const noexcept { return residual_.size(); }
  /// True when layers are true convex-hull layers (dim <= 3).
  [[nodiscard]] bool exact() const noexcept { return exact_; }

  /// Top-k maximizers of w·x (best first).  Exact for any k: scans
  /// min(k, layer_count) layers plus the residual when k exceeds the peel.
  [[nodiscard]] std::vector<ScoredId> top_k(std::span<const double> weights, std::size_t k,
                                            CostMeter& meter) const;

  /// Fault-tolerant form: stops when the context expires, returning the hits
  /// accumulated so far flagged with the stop reason and a sound bound on
  /// any missed score.
  [[nodiscard]] OnionTopK top_k(std::span<const double> weights, std::size_t k, QueryContext& ctx,
                                CostMeter& meter) const;

  /// Top-k minimizers of w·x (best-first by smallness).
  [[nodiscard]] std::vector<ScoredId> bottom_k(std::span<const double> weights, std::size_t k,
                                               CostMeter& meter) const;
  [[nodiscard]] OnionTopK bottom_k(std::span<const double> weights, std::size_t k,
                                   QueryContext& ctx, CostMeter& meter) const;

  /// Total points stored across layers + residual (== points.size()).
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  void build(const OnionConfig& config);
  [[nodiscard]] std::vector<std::uint32_t> peel_once(std::span<const std::uint32_t> alive,
                                                     const OnionConfig& config) const;
  [[nodiscard]] OnionTopK query(std::span<const double> weights, std::size_t k, double sign,
                                QueryContext& ctx, CostMeter& meter) const;

  const TupleSet& points_;
  std::vector<std::vector<std::uint32_t>> layers_;
  /// Suffix bounding boxes: layer_boxes_[i] covers every point in layers
  /// >= i plus the residual.  A query stops as soon as the suffix box's
  /// linear bound cannot beat the current K-th best — usually well before K
  /// layers have been scanned.  Sound for any dimension (it is a plain box
  /// over the actual points, independent of hull exactness).
  std::vector<std::vector<Interval>> layer_boxes_;
  std::vector<Interval> residual_box_;  ///< box over the residual alone
  std::vector<std::uint32_t> residual_;
  bool exact_ = true;
  std::vector<std::vector<double>> directions_;  // dim > 3 peeling directions
};

/// Merges per-shard Onion partials into one global OnionTopK of size at most
/// `k`.  Hits are offered in shard order (ties break toward the lower shard),
/// the merged missed bound is the max over shard bounds, and the disposition
/// is the first truncated shard's status (complete otherwise; all-shed stays
/// shed).  Pure, so shard-merge soundness is unit-testable without a pool.
[[nodiscard]] OnionTopK merge_onion_partials(std::span<const OnionTopK> partials, std::size_t k);

/// Onion indexing partitioned for scatter-gather: the tuple domain is split
/// round-robin (global id % S) into S slices, each slice gets its own
/// materialized TupleSet and an independently built OnionIndex.  Slices
/// partition the ids, so per-shard top-Ks union to the global candidate set —
/// engine::sharded_onion_top_k queries the shards on the pool and merges with
/// merge_onion_partials.  The effective shard count is min(S, points.size())
/// so every shard is non-empty (OnionIndex requires that).
class ShardedOnionIndex {
 public:
  ShardedOnionIndex(const TupleSet& points, std::size_t shard_count, OnionConfig config = {});

  [[nodiscard]] std::size_t shard_count() const noexcept { return indexes_.size(); }
  [[nodiscard]] const OnionIndex& shard(std::size_t s) const;
  /// Maps a shard-local tuple id back to its id in the source TupleSet.
  [[nodiscard]] std::uint32_t global_id(std::size_t s, std::uint32_t local) const;
  /// Total points across all shards (== source points.size()).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Serial scatter-gather: queries every shard in shard order on the calling
  /// thread and merges.  Identical answers to the pooled execution path.
  [[nodiscard]] OnionTopK top_k(std::span<const double> weights, std::size_t k, QueryContext& ctx,
                                CostMeter& meter) const;

 private:
  std::vector<TupleSet> slices_;
  std::vector<std::vector<std::uint32_t>> global_ids_;  ///< [shard][local] -> global
  // OnionIndex holds a const reference to its TupleSet and is not movable,
  // so shards live behind pointers; slices_ is fully built (stable) first.
  std::vector<std::unique_ptr<OnionIndex>> indexes_;
};

}  // namespace mmir
