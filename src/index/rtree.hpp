#pragma once
// STR bulk-loaded R-tree — the paper's explicitly named conventional index
// ("Most of the high-dimensional indexing techniques such as R*-tree are
// optimized for spatial range queries… sub-optimal for model-based queries").
//
// Sort-Tile-Recursive packing produces near-optimal static R-trees, which is
// the fair comparison point for an archive that is bulk-ingested once.  The
// tree answers range queries and best-first branch-and-bound linear top-K,
// letting benchmark E1 quantify the paper's sub-optimality claim against the
// Onion index.

#include <cstdint>
#include <span>
#include <vector>

#include "data/tuples.hpp"
#include "index/kdtree.hpp"  // BoundingBox, ScoredId
#include "util/cost.hpp"

namespace mmir {

class RTree {
 public:
  /// Bulk-loads via STR packing with the given node fanout.
  explicit RTree(const TupleSet& points, std::size_t fanout = 32);

  [[nodiscard]] std::vector<std::uint32_t> range_query(std::span<const double> lo,
                                                       std::span<const double> hi,
                                                       CostMeter& meter) const;

  [[nodiscard]] std::vector<ScoredId> top_k_linear(std::span<const double> weights, std::size_t k,
                                                   CostMeter& meter) const;

  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    BoundingBox box;
    bool leaf = false;
    std::vector<std::uint32_t> children;  // node ids, or row ids when leaf
  };

  /// Packs `items` (node ids or row ids) into parent nodes; returns parents.
  [[nodiscard]] std::vector<std::uint32_t> pack_level(std::vector<std::uint32_t> items, bool leaf,
                                                      std::size_t fanout);
  [[nodiscard]] BoundingBox box_of_item(std::uint32_t item, bool leaf) const;
  [[nodiscard]] std::vector<double> center_of_item(std::uint32_t item, bool leaf) const;

  const TupleSet& points_;
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  std::size_t height_ = 0;
};

}  // namespace mmir
