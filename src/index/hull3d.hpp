#pragma once
// 3-D convex hull (quickhull) over indexed point sets.
//
// This is the geometric engine behind the Onion index for the paper's
// three-parameter linear-model experiment (E1).  The implementation is
// incremental quickhull with face adjacency, a scale-relative epsilon, and
// interior-point orientation checks.  Degenerate inputs (coplanar, collinear,
// coincident) fall back to lower-dimensional hulls so onion peeling always
// makes progress.

#include <cstdint>
#include <span>
#include <vector>

#include "data/tuples.hpp"

namespace mmir {

/// Returns the row ids of the convex-hull vertices of the 3-D rows of
/// `points` listed in `candidates` (unordered).  For degenerate point sets
/// the result is the hull of the effective lower-dimensional configuration.
[[nodiscard]] std::vector<std::uint32_t> convex_hull_3d(const TupleSet& points,
                                                        std::span<const std::uint32_t> candidates);

}  // namespace mmir
