#include "index/onion.hpp"

#include <algorithm>
#include <cmath>

#include "index/hull2d.hpp"
#include "index/hull3d.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/topk.hpp"

namespace mmir {

OnionIndex::OnionIndex(const TupleSet& points, OnionConfig config) : points_(points) {
  MMIR_EXPECTS(points_.size() > 0);
  MMIR_EXPECTS(config.max_layers > 0);
  exact_ = points_.dim() <= 3;
  if (!exact_) {
    // Sample unit directions once; peeling extremes over them approximates
    // the hull vertex set in high dimensions.
    MMIR_EXPECTS(config.direction_samples > 0);
    Rng rng(config.seed);
    directions_.reserve(config.direction_samples);
    for (std::size_t s = 0; s < config.direction_samples; ++s) {
      std::vector<double> dir(points_.dim());
      double norm = 0.0;
      for (auto& v : dir) {
        v = rng.normal();
        norm += v * v;
      }
      norm = std::sqrt(norm);
      for (auto& v : dir) v /= norm;
      directions_.push_back(std::move(dir));
    }
  }
  build(config);
}

void OnionIndex::build(const OnionConfig& config) {
  std::vector<std::uint32_t> alive(points_.size());
  for (std::size_t i = 0; i < alive.size(); ++i) alive[i] = static_cast<std::uint32_t>(i);

  while (!alive.empty() && layers_.size() < config.max_layers) {
    std::vector<std::uint32_t> layer = peel_once(alive, config);
    if (layer.empty()) break;  // defensive: peel must make progress
    std::sort(layer.begin(), layer.end());
    std::vector<std::uint32_t> next_alive;
    next_alive.reserve(alive.size() - layer.size());
    std::set_difference(alive.begin(), alive.end(), layer.begin(), layer.end(),
                        std::back_inserter(next_alive));
    layers_.push_back(std::move(layer));
    alive = std::move(next_alive);
  }
  residual_ = std::move(alive);

  // Suffix bounding boxes, innermost outward: box[i] covers layers >= i and
  // the residual.
  const std::size_t dim = points_.dim();
  const auto grow = [&](std::vector<Interval>& box, std::uint32_t id) {
    const auto row = points_.row(id);
    for (std::size_t d = 0; d < dim; ++d) box[d] = box[d].hull(Interval::point(row[d]));
  };
  std::vector<Interval> suffix;
  bool suffix_started = false;
  const auto start_or_grow = [&](std::uint32_t id) {
    if (!suffix_started) {
      const auto row = points_.row(id);
      suffix.assign(dim, Interval::point(row[0]));
      for (std::size_t d = 0; d < dim; ++d) suffix[d] = Interval::point(row[d]);
      suffix_started = true;
    } else {
      grow(suffix, id);
    }
  };
  for (auto id : residual_) start_or_grow(id);
  if (!residual_.empty()) residual_box_ = suffix;
  layer_boxes_.resize(layers_.size());
  for (std::size_t l = layers_.size(); l-- > 0;) {
    for (auto id : layers_[l]) start_or_grow(id);
    layer_boxes_[l] = suffix;
  }
}

std::vector<std::uint32_t> OnionIndex::peel_once(std::span<const std::uint32_t> alive,
                                                 const OnionConfig&) const {
  if (alive.size() <= points_.dim() + 1) {
    return {alive.begin(), alive.end()};  // tiny remainder: one final layer
  }
  switch (points_.dim()) {
    case 2:
      return convex_hull_2d(points_, alive);
    case 3:
      return convex_hull_3d(points_, alive);
    default: {
      // Directional-extreme peel: argmax and argmin per sampled direction.
      std::vector<std::uint32_t> extremes;
      for (const auto& dir : directions_) {
        std::uint32_t best_max = alive[0];
        std::uint32_t best_min = alive[0];
        double vmax = dot(points_.row(alive[0]), dir);
        double vmin = vmax;
        for (auto id : alive) {
          const double v = dot(points_.row(id), dir);
          if (v > vmax) {
            vmax = v;
            best_max = id;
          }
          if (v < vmin) {
            vmin = v;
            best_min = id;
          }
        }
        extremes.push_back(best_max);
        extremes.push_back(best_min);
      }
      std::sort(extremes.begin(), extremes.end());
      extremes.erase(std::unique(extremes.begin(), extremes.end()), extremes.end());
      return extremes;
    }
  }
}

std::span<const std::uint32_t> OnionIndex::layer(std::size_t i) const {
  MMIR_EXPECTS(i < layers_.size());
  return layers_[i];
}

std::size_t OnionIndex::size() const noexcept {
  std::size_t total = residual_.size();
  for (const auto& l : layers_) total += l.size();
  return total;
}

OnionTopK OnionIndex::query(std::span<const double> weights, std::size_t k, double sign,
                            QueryContext& ctx, CostMeter& meter) const {
  MMIR_EXPECTS(weights.size() == points_.dim());
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "onion_query");
  OnionTopK out;
  TopK<std::uint32_t> top(k);
  const std::uint64_t ops_per_point = points_.dim();
  const auto evaluate = [&](std::uint32_t id) {
    top.offer(sign * dot(points_.row(id), weights), id);
  };

  // Signed linear bound of a suffix box: max of sign*(w.x) over the box.
  const auto box_bound = [&](const std::vector<Interval>& box) {
    double bound = 0.0;
    for (std::size_t d = 0; d < box.size(); ++d) {
      const double sw = sign * weights[d];
      bound += sw >= 0.0 ? sw * box[d].hi : sw * box[d].lo;
    }
    return bound;
  };

  // Scans a contiguous id list, charging per point; returns false (and
  // records the sound missed bound for the enclosing suffix box) on expiry.
  bool truncated = false;
  const auto scan_ids = [&](std::span<const std::uint32_t> ids, const std::vector<Interval>& box,
                            std::size_t& evaluated) {
    for (auto id : ids) {
      if (!ctx.charge(ops_per_point)) {
        // The suffix box covers this id list and everything deeper, so its
        // bound soundly covers every unexamined point.
        out.missed_bound = sign * box_bound(box);
        truncated = true;
        return false;
      }
      evaluate(id);
      ++evaluated;
    }
    return true;
  };

  // The j-th best lies within the first j layers, so scanning min(k, L)
  // layers suffices; the suffix-box bound usually terminates much earlier —
  // as soon as nothing at or below the current layer can beat the K-th best.
  const std::size_t scan_layers = std::min(k, layers_.size());
  std::size_t evaluated = 0;
  bool terminated_early = false;
  for (std::size_t l = 0; l < scan_layers && !truncated; ++l) {
    if (top.full() && box_bound(layer_boxes_[l]) <= top.threshold()) {
      terminated_early = true;
      break;
    }
    if (!scan_ids(layers_[l], layer_boxes_[l], evaluated)) break;
    meter.add_ops(points_.dim());  // the suffix-box bound check
  }
  // When k exceeds the peeled depth the guarantee needs the leftovers too.
  if (k > layers_.size() && !terminated_early && !truncated) {
    for (std::size_t l = scan_layers; l < layers_.size() && !truncated; ++l) {
      if (top.full() && box_bound(layer_boxes_[l]) <= top.threshold()) {
        terminated_early = true;
        break;
      }
      if (!scan_ids(layers_[l], layer_boxes_[l], evaluated)) break;
    }
    if (!terminated_early && !truncated &&
        !(top.full() && !residual_.empty() && box_bound(residual_box_) <= top.threshold())) {
      (void)scan_ids(residual_, residual_box_, evaluated);
    }
  }
  meter.add_points(evaluated);
  meter.add_ops(evaluated * points_.dim());
  meter.add_bytes(evaluated * points_.dim() * sizeof(double));

  for (auto& entry : top.take_sorted()) out.hits.push_back(ScoredId{entry.item, sign * entry.score});
  if (truncated) out.status = ctx.stop_reason();
  if (span.active()) {
    span.annotate("layers", static_cast<double>(layers_.size()));
    span.annotate("points_evaluated", static_cast<double>(evaluated));
    // Candidate accounting for EXPLAIN: every indexed point is a candidate;
    // whatever the layer/suffix bounds kept us from touching was pruned.
    span.annotate("items_examined", static_cast<double>(evaluated));
    span.annotate("items_pruned", static_cast<double>(size() - evaluated));
    span.annotate("hits", static_cast<double>(out.hits.size()));
    span.note("terminated_early", terminated_early ? "true" : "false");
    span.note("status", to_string(out.status));
  }
  return out;
}

std::vector<ScoredId> OnionIndex::top_k(std::span<const double> weights, std::size_t k,
                                        CostMeter& meter) const {
  QueryContext unbounded;
  return std::move(query(weights, k, 1.0, unbounded, meter).hits);
}

OnionTopK OnionIndex::top_k(std::span<const double> weights, std::size_t k, QueryContext& ctx,
                            CostMeter& meter) const {
  return query(weights, k, 1.0, ctx, meter);
}

std::vector<ScoredId> OnionIndex::bottom_k(std::span<const double> weights, std::size_t k,
                                           CostMeter& meter) const {
  QueryContext unbounded;
  return std::move(query(weights, k, -1.0, unbounded, meter).hits);
}

OnionTopK OnionIndex::bottom_k(std::span<const double> weights, std::size_t k, QueryContext& ctx,
                               CostMeter& meter) const {
  return query(weights, k, -1.0, ctx, meter);
}

OnionTopK merge_onion_partials(std::span<const OnionTopK> partials, std::size_t k) {
  MMIR_EXPECTS(k > 0);
  OnionTopK out;
  TopK<std::uint32_t> top(k);
  bool all_shed = !partials.empty();
  ResultStatus truncated = ResultStatus::kComplete;
  for (const OnionTopK& partial : partials) {
    for (const ScoredId& hit : partial.hits) top.offer(hit.score, hit.id);
    out.missed_bound = std::max(out.missed_bound, partial.missed_bound);
    if (partial.status != ResultStatus::kShed) all_shed = false;
    if (is_truncated(partial.status) && truncated == ResultStatus::kComplete) {
      truncated = partial.status;
    }
  }
  for (auto& entry : top.take_sorted()) out.hits.push_back(ScoredId{entry.item, entry.score});
  if (all_shed) {
    out.status = ResultStatus::kShed;
    out.missed_bound = std::numeric_limits<double>::infinity();
  } else {
    out.status = truncated;
  }
  return out;
}

ShardedOnionIndex::ShardedOnionIndex(const TupleSet& points, std::size_t shard_count,
                                     OnionConfig config) {
  MMIR_EXPECTS(points.size() > 0);
  MMIR_EXPECTS(shard_count > 0);
  const std::size_t count = std::min(shard_count, points.size());
  const std::size_t dim = points.dim();
  slices_.reserve(count);
  global_ids_.assign(count, {});
  for (std::size_t s = 0; s < count; ++s) slices_.emplace_back(dim);
  for (std::size_t id = 0; id < points.size(); ++id) {
    const std::size_t s = id % count;
    slices_[s].push_row(points.row(id));
    global_ids_[s].push_back(static_cast<std::uint32_t>(id));
  }
  // slices_ never reallocates past this point, so the references the
  // per-shard indexes capture stay valid for the index's lifetime.
  indexes_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    indexes_.push_back(std::make_unique<OnionIndex>(slices_[s], config));
  }
}

const OnionIndex& ShardedOnionIndex::shard(std::size_t s) const {
  MMIR_EXPECTS(s < indexes_.size());
  return *indexes_[s];
}

std::uint32_t ShardedOnionIndex::global_id(std::size_t s, std::uint32_t local) const {
  MMIR_EXPECTS(s < global_ids_.size());
  MMIR_EXPECTS(local < global_ids_[s].size());
  return global_ids_[s][local];
}

std::size_t ShardedOnionIndex::size() const noexcept {
  std::size_t total = 0;
  for (const auto& ids : global_ids_) total += ids.size();
  return total;
}

OnionTopK ShardedOnionIndex::top_k(std::span<const double> weights, std::size_t k,
                                   QueryContext& ctx, CostMeter& meter) const {
  std::vector<OnionTopK> partials;
  partials.reserve(indexes_.size());
  for (std::size_t s = 0; s < indexes_.size(); ++s) {
    OnionTopK partial = indexes_[s]->top_k(weights, k, ctx, meter);
    for (ScoredId& hit : partial.hits) hit.id = global_id(s, hit.id);
    partials.push_back(std::move(partial));
  }
  return merge_onion_partials(partials, k);
}

}  // namespace mmir
