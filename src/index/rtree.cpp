#include "index/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/topk.hpp"

namespace mmir {

RTree::RTree(const TupleSet& points, std::size_t fanout) : points_(points) {
  MMIR_EXPECTS(points_.size() > 0);
  MMIR_EXPECTS(fanout >= 2);

  std::vector<std::uint32_t> items(points_.size());
  for (std::size_t i = 0; i < items.size(); ++i) items[i] = static_cast<std::uint32_t>(i);

  bool leaf = true;
  height_ = 0;
  while (items.size() > 1 || height_ == 0) {
    items = pack_level(std::move(items), leaf, fanout);
    leaf = false;
    ++height_;
    if (items.size() == 1) break;
  }
  root_ = items.front();
}

BoundingBox RTree::box_of_item(std::uint32_t item, bool leaf) const {
  if (leaf) {
    const auto row = points_.row(item);
    BoundingBox box;
    box.lo.assign(row.begin(), row.end());
    box.hi.assign(row.begin(), row.end());
    return box;
  }
  return nodes_[item].box;
}

std::vector<double> RTree::center_of_item(std::uint32_t item, bool leaf) const {
  const BoundingBox box = box_of_item(item, leaf);
  std::vector<double> center(box.lo.size());
  for (std::size_t d = 0; d < center.size(); ++d) center[d] = 0.5 * (box.lo[d] + box.hi[d]);
  return center;
}

std::vector<std::uint32_t> RTree::pack_level(std::vector<std::uint32_t> items, bool leaf,
                                             std::size_t fanout) {
  const std::size_t dim = points_.dim();

  // Recursive STR slab partitioning: sorts by successive center coordinates
  // and slices so that final runs of `fanout` items are spatially compact.
  struct Packer {
    RTree& tree;
    bool leaf;
    std::size_t fanout;
    std::size_t dim;
    std::vector<std::uint32_t> parents;

    void pack(std::span<std::uint32_t> span, std::size_t axis) {
      const std::size_t groups = (span.size() + fanout - 1) / fanout;
      if (groups <= 1 || axis + 1 >= dim) {
        // Final axis: sort and chunk into nodes.
        std::sort(span.begin(), span.end(), [&](std::uint32_t a, std::uint32_t b) {
          return tree.center_of_item(a, leaf)[axis] < tree.center_of_item(b, leaf)[axis];
        });
        for (std::size_t start = 0; start < span.size(); start += fanout) {
          const std::size_t count = std::min(fanout, span.size() - start);
          Node node;
          node.leaf = leaf;
          node.children.assign(span.begin() + static_cast<long>(start),
                               span.begin() + static_cast<long>(start + count));
          node.box = tree.box_of_item(node.children.front(), leaf);
          for (std::size_t c = 1; c < node.children.size(); ++c) {
            const BoundingBox child = tree.box_of_item(node.children[c], leaf);
            for (std::size_t d = 0; d < node.box.lo.size(); ++d) {
              node.box.lo[d] = std::min(node.box.lo[d], child.lo[d]);
              node.box.hi[d] = std::max(node.box.hi[d], child.hi[d]);
            }
          }
          tree.nodes_.push_back(std::move(node));
          parents.push_back(static_cast<std::uint32_t>(tree.nodes_.size() - 1));
        }
        return;
      }
      // Slab count: groups^(1/remaining_axes), at least 1.
      const double remaining = static_cast<double>(dim - axis);
      const auto slabs = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::ceil(std::pow(static_cast<double>(groups), 1.0 / remaining))));
      std::sort(span.begin(), span.end(), [&](std::uint32_t a, std::uint32_t b) {
        return tree.center_of_item(a, leaf)[axis] < tree.center_of_item(b, leaf)[axis];
      });
      const std::size_t slab_size = (span.size() + slabs - 1) / slabs;
      for (std::size_t start = 0; start < span.size(); start += slab_size) {
        const std::size_t count = std::min(slab_size, span.size() - start);
        pack(span.subspan(start, count), axis + 1);
      }
    }
  };

  Packer packer{*this, leaf, fanout, dim, {}};
  packer.pack(items, 0);
  return std::move(packer.parents);
}

std::vector<std::uint32_t> RTree::range_query(std::span<const double> lo,
                                              std::span<const double> hi,
                                              CostMeter& meter) const {
  MMIR_EXPECTS(lo.size() == points_.dim() && hi.size() == points_.dim());
  ScopedTimer timer(meter);
  BoundingBox query;
  query.lo.assign(lo.begin(), lo.end());
  query.hi.assign(hi.begin(), hi.end());

  std::vector<std::uint32_t> out;
  std::vector<std::uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.intersects(query)) {
      meter.add_pruned();
      continue;
    }
    if (node.leaf) {
      for (std::uint32_t id : node.children) {
        meter.add_points(1);
        if (query.contains(points_.row(id))) out.push_back(id);
      }
    } else {
      for (std::uint32_t child : node.children) stack.push_back(child);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ScoredId> RTree::top_k_linear(std::span<const double> weights, std::size_t k,
                                          CostMeter& meter) const {
  MMIR_EXPECTS(weights.size() == points_.dim());
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);

  struct Frontier {
    double bound;
    std::uint32_t node;
    bool operator<(const Frontier& other) const noexcept { return bound < other.bound; }
  };
  std::priority_queue<Frontier> frontier;
  frontier.push({nodes_[root_].box.linear_upper_bound(weights), root_});

  TopK<std::uint32_t> top(k);
  while (!frontier.empty()) {
    const Frontier f = frontier.top();
    frontier.pop();
    if (top.full() && f.bound <= top.threshold()) {
      meter.add_pruned();
      break;
    }
    const Node& node = nodes_[f.node];
    if (node.leaf) {
      for (std::uint32_t id : node.children) top.offer(dot(points_.row(id), weights), id);
      meter.add_points(node.children.size());
      meter.add_ops(node.children.size() * points_.dim());
    } else {
      for (std::uint32_t child : node.children) {
        frontier.push({nodes_[child].box.linear_upper_bound(weights), child});
        // Index-node work: reading the child MBR and computing its bound.
        meter.add_ops(points_.dim());
        meter.add_bytes(2 * points_.dim() * sizeof(double));
      }
    }
  }

  std::vector<ScoredId> out;
  for (auto& entry : top.take_sorted()) out.push_back(ScoredId{entry.item, entry.score});
  return out;
}

}  // namespace mmir
