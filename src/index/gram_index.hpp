#pragma once
// n-gram inverted index over symbol sequences — the model-specific index for
// finite-state retrieval.
//
// Weather series are discretized to a small symbol alphabet (see src/fsm).
// The index maps every length-n symbol window to the list of series
// containing it.  A finite-state model compiles to a set of "required grams":
// any series accepted by the FSM must contain at least one gram from that set
// (derived from the DFA's accepting paths), so candidate series are fetched
// from the posting lists and only those are simulated — the §3.2 idea of
// pruning the search space with a model-specific index, applied to the
// finite-state family where convex-hull indexing "may not be suitable".

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/cost.hpp"

namespace mmir {

/// Discrete symbol stream (values < alphabet size, which must be <= 16 so
/// grams pack into a u64 key for n <= 16).
using SymbolSeq = std::vector<std::uint8_t>;

class GramIndex {
 public:
  /// Indexes all length-`n` windows of every sequence.
  GramIndex(std::span<const SymbolSeq> sequences, std::size_t n, std::size_t alphabet);

  [[nodiscard]] std::size_t gram_length() const noexcept { return n_; }
  [[nodiscard]] std::size_t sequence_count() const noexcept { return sequence_count_; }
  [[nodiscard]] std::size_t distinct_grams() const noexcept { return postings_.size(); }

  /// Packs a gram into its u64 key; gram.size() must equal gram_length().
  [[nodiscard]] std::uint64_t pack(std::span<const std::uint8_t> gram) const;

  /// Sequence ids containing the gram (sorted, deduplicated).
  [[nodiscard]] std::span<const std::uint32_t> postings(std::span<const std::uint8_t> gram) const;

  /// Union of postings over a set of grams: the candidate set for a query
  /// that requires at least one of them.  Charges the meter one op per
  /// posting touched.
  [[nodiscard]] std::vector<std::uint32_t> candidates_any(
      std::span<const SymbolSeq> grams, CostMeter& meter) const;

 private:
  std::size_t n_;
  std::size_t alphabet_;
  std::size_t sequence_count_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> postings_;
  static const std::vector<std::uint32_t> kEmpty;
};

}  // namespace mmir
