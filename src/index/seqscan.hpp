#pragma once
// Sequential-scan evaluation of a linear preference over a tuple set — the
// baseline every index in the paper is measured against ("almost all existing
// methods require applying the model sequentially over the entire region of
// the data").

#include <cstdint>
#include <span>
#include <vector>

#include "data/tuples.hpp"
#include "util/cost.hpp"
#include "util/topk.hpp"

namespace mmir {

/// A scored retrieval hit: tuple row id + model value.
struct ScoredId {
  std::uint32_t id = 0;
  double score = 0.0;
};

/// Evaluates w·x over every row and returns the top-k maximizers
/// (best first).  Charges `meter` one point + dim ops per row.
[[nodiscard]] std::vector<ScoredId> scan_top_k(const TupleSet& points,
                                               std::span<const double> weights, std::size_t k,
                                               CostMeter& meter);

/// Same, for minimization.
[[nodiscard]] std::vector<ScoredId> scan_bottom_k(const TupleSet& points,
                                                  std::span<const double> weights, std::size_t k,
                                                  CostMeter& meter);

}  // namespace mmir
