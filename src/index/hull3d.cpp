#include "index/hull3d.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "index/hull2d.hpp"
#include "util/error.hpp"

namespace mmir {

namespace {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  friend Vec3 operator-(const Vec3& a, const Vec3& b) noexcept {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator+(const Vec3& a, const Vec3& b) noexcept {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator*(double s, const Vec3& a) noexcept { return {s * a.x, s * a.y, s * a.z}; }
};

double dot(const Vec3& a, const Vec3& b) noexcept { return a.x * b.x + a.y * b.y + a.z * b.z; }
Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
double norm(const Vec3& a) noexcept { return std::sqrt(dot(a, a)); }

constexpr std::uint32_t kNone = 0xffffffffu;

struct Face {
  std::array<std::uint32_t, 3> v{};           // vertex row ids, outward winding
  Vec3 normal;                                 // unit outward normal
  double offset = 0.0;                         // plane: dot(normal, p) == offset
  std::array<std::uint32_t, 3> neighbor{kNone, kNone, kNone};  // across edge (v[i], v[i+1])
  std::vector<std::uint32_t> outside;          // candidate points above this face
  bool alive = true;
};

class QuickHull3D {
 public:
  QuickHull3D(const TupleSet& points, std::span<const std::uint32_t> candidates)
      : points_(points), ids_(candidates.begin(), candidates.end()) {}

  std::vector<std::uint32_t> run() {
    if (ids_.size() <= 3) return dedup_small();
    compute_epsilon();
    if (!build_initial_simplex()) return degenerate_hull();
    assign_outside_points();
    process();
    return collect_vertices();
  }

 private:
  Vec3 p(std::uint32_t id) const {
    const auto row = points_.row(id);
    return {row[0], row[1], row[2]};
  }

  double signed_distance(const Face& f, std::uint32_t id) const {
    return dot(f.normal, p(id)) - f.offset;
  }

  void compute_epsilon() {
    Vec3 lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
    Vec3 hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};
    for (auto id : ids_) {
      const Vec3 q = p(id);
      lo = {std::min(lo.x, q.x), std::min(lo.y, q.y), std::min(lo.z, q.z)};
      hi = {std::max(hi.x, q.x), std::max(hi.y, q.y), std::max(hi.z, q.z)};
    }
    const double extent = std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-300});
    eps_ = 1e-9 * extent;
  }

  std::vector<std::uint32_t> dedup_small() const {
    std::vector<std::uint32_t> out;
    for (auto id : ids_) {
      bool duplicate = false;
      for (auto kept : out) {
        const Vec3 d = p(id) - p(kept);
        if (norm(d) == 0.0) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) out.push_back(id);
    }
    return out;
  }

  /// Picks four affinely independent points; returns false when degenerate.
  bool build_initial_simplex() {
    // Extreme along x (ties broken by the coordinates themselves).
    std::uint32_t a = ids_[0];
    std::uint32_t b = ids_[0];
    for (auto id : ids_) {
      if (p(id).x < p(a).x) a = id;
      if (p(id).x > p(b).x) b = id;
    }
    if (norm(p(b) - p(a)) <= eps_) {
      // All points nearly coincident on x; try any distant pair.
      for (auto id : ids_) {
        if (norm(p(id) - p(a)) > norm(p(b) - p(a))) b = id;
      }
      if (norm(p(b) - p(a)) <= eps_) return false;  // coincident cloud
    }
    // Furthest from line ab.
    const Vec3 ab = p(b) - p(a);
    std::uint32_t c = kNone;
    double best_line = eps_;
    for (auto id : ids_) {
      const double d = norm(cross(ab, p(id) - p(a))) / norm(ab);
      if (d > best_line) {
        best_line = d;
        c = id;
      }
    }
    if (c == kNone) return false;  // collinear
    // Furthest from plane abc.
    Vec3 n = cross(p(b) - p(a), p(c) - p(a));
    n = (1.0 / norm(n)) * n;
    const double plane_offset = dot(n, p(a));
    std::uint32_t d_id = kNone;
    double best_plane = eps_;
    for (auto id : ids_) {
      const double d = std::abs(dot(n, p(id)) - plane_offset);
      if (d > best_plane) {
        best_plane = d;
        d_id = id;
      }
    }
    if (d_id == kNone) return false;  // coplanar

    interior_ = 0.25 * (p(a) + p(b) + p(c) + p(d_id));
    make_face(a, b, c);
    make_face(a, c, d_id);
    make_face(a, d_id, b);
    make_face(b, d_id, c);
    link_all_faces();
    simplex_ = {a, b, c, d_id};
    return true;
  }

  /// Creates a face whose outward normal points away from interior_.
  std::uint32_t make_face(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
    Face f;
    f.v = {a, b, c};
    Vec3 n = cross(p(b) - p(a), p(c) - p(a));
    const double len = norm(n);
    MMIR_ENSURES(len > 0.0);
    n = (1.0 / len) * n;
    double offset = dot(n, p(a));
    if (dot(n, interior_) - offset > 0.0) {  // flip to face outward
      std::swap(f.v[1], f.v[2]);
      n = {-n.x, -n.y, -n.z};
      offset = -offset;
    }
    f.normal = n;
    f.offset = offset;
    faces_.push_back(std::move(f));
    return static_cast<std::uint32_t>(faces_.size() - 1);
  }

  /// Rebuilds neighbor links for every alive face (used once on the simplex).
  void link_all_faces() {
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<std::uint32_t, int>> edge_owner;
    for (std::uint32_t fi = 0; fi < faces_.size(); ++fi) {
      if (!faces_[fi].alive) continue;
      for (int e = 0; e < 3; ++e) {
        const std::uint32_t u = faces_[fi].v[static_cast<std::size_t>(e)];
        const std::uint32_t w = faces_[fi].v[static_cast<std::size_t>((e + 1) % 3)];
        const auto key = std::minmax(u, w);
        auto it = edge_owner.find(key);
        if (it == edge_owner.end()) {
          edge_owner.emplace(key, std::make_pair(fi, e));
        } else {
          faces_[fi].neighbor[static_cast<std::size_t>(e)] = it->second.first;
          faces_[it->second.first].neighbor[static_cast<std::size_t>(it->second.second)] = fi;
        }
      }
    }
  }

  void assign_outside_points() {
    for (auto id : ids_) {
      if (id == simplex_[0] || id == simplex_[1] || id == simplex_[2] || id == simplex_[3]) continue;
      assign_point(id, 0);
    }
    for (std::uint32_t fi = 0; fi < faces_.size(); ++fi) {
      if (!faces_[fi].outside.empty()) pending_.push_back(fi);
    }
  }

  /// Attaches a point to the first face (from `start`) it lies above.
  void assign_point(std::uint32_t id, std::uint32_t start) {
    for (std::uint32_t fi = start; fi < faces_.size(); ++fi) {
      if (!faces_[fi].alive) continue;
      if (signed_distance(faces_[fi], id) > eps_) {
        faces_[fi].outside.push_back(id);
        return;
      }
    }
    // Interior (or on the surface): not a hull vertex; dropped.
  }

  void process() {
    while (!pending_.empty()) {
      const std::uint32_t fi = pending_.back();
      pending_.pop_back();
      if (fi >= faces_.size() || !faces_[fi].alive || faces_[fi].outside.empty()) continue;

      // Eye point: farthest above this face.
      const Face& face = faces_[fi];
      std::uint32_t eye = face.outside.front();
      double best = -1.0;
      for (auto id : face.outside) {
        const double d = signed_distance(face, id);
        if (d > best) {
          best = d;
          eye = id;
        }
      }

      // Find all faces visible from the eye (BFS over adjacency).
      std::vector<std::uint32_t> visible;
      std::set<std::uint32_t> visited;
      std::vector<std::uint32_t> stack{fi};
      visited.insert(fi);
      while (!stack.empty()) {
        const std::uint32_t cur = stack.back();
        stack.pop_back();
        visible.push_back(cur);
        for (int e = 0; e < 3; ++e) {
          const std::uint32_t nb = faces_[cur].neighbor[static_cast<std::size_t>(e)];
          if (nb == kNone || visited.count(nb) != 0 || !faces_[nb].alive) continue;
          if (signed_distance(faces_[nb], eye) > eps_) {
            visited.insert(nb);
            stack.push_back(nb);
          }
        }
      }

      // Horizon: edges of visible faces whose neighbor is not visible.
      struct HorizonEdge {
        std::uint32_t a, b;         // oriented as in the visible face
        std::uint32_t outer_face;   // surviving neighbor across (a, b)
      };
      std::vector<HorizonEdge> horizon;
      const std::set<std::uint32_t> visible_set(visible.begin(), visible.end());
      for (auto vf : visible) {
        for (int e = 0; e < 3; ++e) {
          const std::uint32_t nb = faces_[vf].neighbor[static_cast<std::size_t>(e)];
          if (nb != kNone && visible_set.count(nb) == 0) {
            horizon.push_back(HorizonEdge{faces_[vf].v[static_cast<std::size_t>(e)],
                                          faces_[vf].v[static_cast<std::size_t>((e + 1) % 3)], nb});
          }
        }
      }

      // Gather orphaned outside points and kill the visible faces.
      std::vector<std::uint32_t> orphans;
      for (auto vf : visible) {
        for (auto id : faces_[vf].outside) {
          if (id != eye) orphans.push_back(id);
        }
        faces_[vf].outside.clear();
        faces_[vf].alive = false;
      }

      // Build the new cone of faces around the eye.
      const std::uint32_t first_new = static_cast<std::uint32_t>(faces_.size());
      std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<std::uint32_t, int>> edge_map;
      for (const auto& edge : horizon) {
        const std::uint32_t nf = make_face(edge.a, edge.b, eye);
        // Link with the surviving outer face across (a, b).
        for (int e = 0; e < 3; ++e) {
          const std::uint32_t u = faces_[nf].v[static_cast<std::size_t>(e)];
          const std::uint32_t w = faces_[nf].v[static_cast<std::size_t>((e + 1) % 3)];
          if (std::minmax(u, w) == std::minmax(edge.a, edge.b)) {
            faces_[nf].neighbor[static_cast<std::size_t>(e)] = edge.outer_face;
            // Update the outer face's back-pointer.
            Face& outer = faces_[edge.outer_face];
            for (int oe = 0; oe < 3; ++oe) {
              const std::uint32_t ou = outer.v[static_cast<std::size_t>(oe)];
              const std::uint32_t ow = outer.v[static_cast<std::size_t>((oe + 1) % 3)];
              if (std::minmax(ou, ow) == std::minmax(edge.a, edge.b)) {
                outer.neighbor[static_cast<std::size_t>(oe)] = nf;
              }
            }
          } else {
            // Eye-adjacent edge: link against sibling new faces via the map.
            const auto key = std::minmax(u, w);
            auto it = edge_map.find(key);
            if (it == edge_map.end()) {
              edge_map.emplace(key, std::make_pair(nf, e));
            } else {
              faces_[nf].neighbor[static_cast<std::size_t>(e)] = it->second.first;
              faces_[it->second.first].neighbor[static_cast<std::size_t>(it->second.second)] = nf;
            }
          }
        }
      }

      // Redistribute orphans over the new faces only (they were inside every
      // surviving face already).
      for (auto id : orphans) {
        bool placed = false;
        for (std::uint32_t nf = first_new; nf < faces_.size(); ++nf) {
          if (signed_distance(faces_[nf], id) > eps_) {
            faces_[nf].outside.push_back(id);
            placed = true;
            break;
          }
        }
        (void)placed;  // unplaced points are now interior
      }
      for (std::uint32_t nf = first_new; nf < faces_.size(); ++nf) {
        if (!faces_[nf].outside.empty()) pending_.push_back(nf);
      }
    }
  }

  std::vector<std::uint32_t> collect_vertices() const {
    std::set<std::uint32_t> verts;
    for (const auto& f : faces_) {
      if (f.alive) verts.insert(f.v.begin(), f.v.end());
    }
    return {verts.begin(), verts.end()};
  }

  /// Coplanar / collinear / coincident fallback: hull of the projection onto
  /// the two dominant principal axes of the bounding box.
  std::vector<std::uint32_t> degenerate_hull() const {
    // Project to the plane spanned by the two widest axes.
    std::array<double, 3> lo{std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::infinity()};
    std::array<double, 3> hi{-std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
    for (auto id : ids_) {
      const auto row = points_.row(id);
      for (int d = 0; d < 3; ++d) {
        lo[static_cast<std::size_t>(d)] = std::min(lo[static_cast<std::size_t>(d)], row[static_cast<std::size_t>(d)]);
        hi[static_cast<std::size_t>(d)] = std::max(hi[static_cast<std::size_t>(d)], row[static_cast<std::size_t>(d)]);
      }
    }
    std::array<int, 3> axes{0, 1, 2};
    std::sort(axes.begin(), axes.end(), [&](int a, int b) {
      return hi[static_cast<std::size_t>(a)] - lo[static_cast<std::size_t>(a)] >
             hi[static_cast<std::size_t>(b)] - lo[static_cast<std::size_t>(b)];
    });
    TupleSet projected(2, ids_.size());
    std::vector<std::uint32_t> local(ids_.size());
    for (std::size_t i = 0; i < ids_.size(); ++i) {
      const auto row = points_.row(ids_[i]);
      const double xy[2] = {row[static_cast<std::size_t>(axes[0])],
                            row[static_cast<std::size_t>(axes[1])]};
      projected.push_row(xy);
      local[i] = static_cast<std::uint32_t>(i);
    }
    const auto hull_local = convex_hull_2d(projected, local);
    std::vector<std::uint32_t> out;
    out.reserve(hull_local.size());
    for (auto li : hull_local) out.push_back(ids_[li]);
    return out;
  }

  const TupleSet& points_;
  std::vector<std::uint32_t> ids_;
  std::vector<Face> faces_;
  std::vector<std::uint32_t> pending_;
  std::array<std::uint32_t, 4> simplex_{kNone, kNone, kNone, kNone};
  Vec3 interior_;
  double eps_ = 1e-12;
};

}  // namespace

std::vector<std::uint32_t> convex_hull_3d(const TupleSet& points,
                                          std::span<const std::uint32_t> candidates) {
  MMIR_EXPECTS(points.dim() == 3);
  QuickHull3D hull(points, candidates);
  return hull.run();
}

}  // namespace mmir
