#include "index/hull2d.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mmir {

namespace {

/// Twice the signed area of triangle (o, a, b): > 0 for a left turn.
double cross(std::span<const double> o, std::span<const double> a,
             std::span<const double> b) noexcept {
  return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0]);
}

}  // namespace

std::vector<std::uint32_t> convex_hull_2d(const TupleSet& points,
                                          std::span<const std::uint32_t> candidates) {
  MMIR_EXPECTS(points.dim() == 2);
  std::vector<std::uint32_t> ids(candidates.begin(), candidates.end());
  std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto pa = points.row(a);
    const auto pb = points.row(b);
    if (pa[0] != pb[0]) return pa[0] < pb[0];
    return pa[1] < pb[1];
  });
  ids.erase(std::unique(ids.begin(), ids.end(),
                        [&](std::uint32_t a, std::uint32_t b) {
                          const auto pa = points.row(a);
                          const auto pb = points.row(b);
                          return pa[0] == pb[0] && pa[1] == pb[1];
                        }),
            ids.end());
  if (ids.size() <= 2) return ids;

  std::vector<std::uint32_t> hull(2 * ids.size());
  std::size_t k = 0;
  // Lower chain.
  for (std::uint32_t id : ids) {
    while (k >= 2 && cross(points.row(hull[k - 2]), points.row(hull[k - 1]), points.row(id)) <= 0.0)
      --k;
    hull[k++] = id;
  }
  // Upper chain.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = ids.size() - 1; i-- > 0;) {
    const std::uint32_t id = ids[i];
    while (k >= lower_size &&
           cross(points.row(hull[k - 2]), points.row(hull[k - 1]), points.row(id)) <= 0.0)
      --k;
    hull[k++] = id;
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

}  // namespace mmir
