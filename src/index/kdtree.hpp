#pragma once
// kd-tree over tuple sets: the conventional spatial-index baseline.
//
// §3.2 of the paper argues that range-optimized structures (R*-tree and kin)
// are "sub-optimal for model-based queries".  We implement both a kd-tree and
// an R-tree so the benchmarks can quantify that argument: each supports
// (a) axis-aligned range queries — their home turf — and (b) best-first
// branch-and-bound top-K linear optimization using node bounding boxes,
// which is the strongest reasonable adaptation of a spatial index to the
// paper's linear-model queries.

#include <cstdint>
#include <span>
#include <vector>

#include "data/tuples.hpp"
#include "index/seqscan.hpp"
#include "util/cost.hpp"

namespace mmir {

/// Axis-aligned box in d dimensions.
struct BoundingBox {
  std::vector<double> lo;
  std::vector<double> hi;

  [[nodiscard]] bool contains(std::span<const double> p) const noexcept;
  [[nodiscard]] bool intersects(const BoundingBox& other) const noexcept;
  /// max over the box of w·x (attained at a corner).
  [[nodiscard]] double linear_upper_bound(std::span<const double> w) const noexcept;
};

/// Static median-split kd-tree (leaf buckets of `leaf_size` rows).
class KdTree {
 public:
  explicit KdTree(const TupleSet& points, std::size_t leaf_size = 16);

  /// Row ids of all points inside [lo, hi] (inclusive).
  [[nodiscard]] std::vector<std::uint32_t> range_query(std::span<const double> lo,
                                                       std::span<const double> hi,
                                                       CostMeter& meter) const;

  /// Top-k maximizers of w·x via best-first branch & bound.
  [[nodiscard]] std::vector<ScoredId> top_k_linear(std::span<const double> weights, std::size_t k,
                                                   CostMeter& meter) const;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    BoundingBox box;
    std::int32_t left = -1;    // children node ids, -1 for leaf
    std::int32_t right = -1;
    std::uint32_t begin = 0;   // leaf: [begin, end) into order_
    std::uint32_t end = 0;
  };

  std::int32_t build(std::uint32_t begin, std::uint32_t end, std::size_t leaf_size);
  [[nodiscard]] BoundingBox compute_box(std::uint32_t begin, std::uint32_t end) const;

  const TupleSet& points_;
  std::vector<std::uint32_t> order_;  // row ids, permuted by the build
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
};

}  // namespace mmir
