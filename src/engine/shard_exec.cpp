#include "engine/shard_exec.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sproc/brute.hpp"
#include "sproc/fast_sproc.hpp"
#include "sproc/sproc.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace mmir {

namespace {

using exec::kNegInf;

constexpr double kPosInf = std::numeric_limits<double>::infinity();

/// Monotone shared pruning threshold across shard tasks (same shape as the
/// tile-parallel executors'): a relaxed atomic maximum.  Stale reads only
/// weaken pruning, never soundness, because the value is always the K-th
/// best of some full all-exact heap — a lower bound on the final global
/// K-th best.
class SharedThreshold {
 public:
  [[nodiscard]] double get() const noexcept { return value_.load(std::memory_order_relaxed); }

  void raise(double candidate) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> value_{kNegInf};
};

/// Per-shard accumulation state.  Indexed by shard id — each shard is
/// processed by exactly one pool slot, so no synchronization is needed until
/// the gather (parallel_for's completion handshake publishes the writes).
struct ShardRun {
  explicit ShardRun(std::size_t k) : top(k) {}
  TopK<RasterHit> top;
  CostMeter meter;
  exec::ScanTally tally;
  std::uint64_t scan_ops = 0;
  std::uint64_t tiles_scanned = 0;
  std::uint64_t tiles_pruned = 0;
  ResultStatus status = ResultStatus::kComplete;
  double missed_bound = kNegInf;
};

/// Shard-level completion status: degraded when the shard carries poisoned
/// samples anywhere in its tiles (a pruned tile's NaN could have been
/// anything), matching the archive-level rule of exec::completion_status so
/// the merged disposition agrees with the monolithic executors.
ResultStatus shard_completion_status(const ShardInfo& shard, std::uint64_t bad_points) {
  return bad_points > 0 || shard.bad_pixels > 0 ? ResultStatus::kDegraded
                                                : ResultStatus::kComplete;
}

/// The EXPLAIN stage row of one shard: items examined/pruned (pixels whose
/// evaluation began vs never touched), tile traffic, ops, disposition.
void annotate_shard(const obs::Span& span, const ShardInfo& shard, const ShardRun& run) {
  if (!span.active()) return;
  span.annotate("shard", static_cast<double>(shard.id));
  span.annotate("items_examined", static_cast<double>(run.tally.pixels));
  span.annotate("items_pruned",
                static_cast<double>(shard.pixel_count - std::min<std::uint64_t>(
                                                            shard.pixel_count, run.tally.pixels)));
  span.annotate("tiles_scanned", static_cast<double>(run.tiles_scanned));
  span.annotate("tiles_pruned", static_cast<double>(run.tiles_pruned));
  span.annotate("meter_ops", static_cast<double>(run.meter.ops()));
  span.note("status", to_string(run.status));
}

/// Parent-span annotations: the same four §4.2 efficiency inputs the serial
/// and tile-parallel executors emit, summed across shards, so
/// obs::ExplainReport reads one vocabulary for all three execution paths.
void annotate_efficiency(const obs::Span& span, const TiledArchive& archive,
                         std::uint64_t model_terms, std::uint64_t pixels_visited,
                         std::uint64_t scan_ops) {
  if (!span.active()) return;
  span.annotate("total_pixels",
                static_cast<double>(archive.width()) * static_cast<double>(archive.height()));
  span.annotate("model_terms", static_cast<double>(model_terms));
  span.annotate("pixels_visited", static_cast<double>(pixels_visited));
  span.annotate("scan_ops", static_cast<double>(scan_ops));
}

void annotate_result(const obs::Span& span, const RasterTopK& out, const CostMeter& meter,
                     std::size_t shards) {
  if (!span.active()) return;
  span.annotate("shards", static_cast<double>(shards));
  span.annotate("hits", static_cast<double>(out.hits.size()));
  span.annotate("bad_points", static_cast<double>(out.bad_points));
  span.annotate("meter_points", static_cast<double>(meter.points()));
  span.annotate("meter_ops", static_cast<double>(meter.ops()));
  span.annotate("meter_pruned", static_cast<double>(meter.pruned()));
  span.note("status", to_string(out.status));
}

// --------------------------------------------------------------- fault domains
//
// When a ShardExecOptions with an active policy/chaos hook is threaded in,
// each shard runs as an independent fault domain (see engine/fault_domain.hpp
// and DESIGN.md §6f): per-attempt child QueryContexts chained under the
// query's global context carry the per-shard sub-deadline and the hedge
// cancellation flag; transient failures retry under jittered capped backoff;
// straggler shards optionally get a hedged duplicate through the pool's
// urgent lane.  A shard that exhausts its attempts is folded into the merge
// as kDegraded with its whole-shard bound — widening the merged missed bound
// shortens the certified prefix but never corrupts it.

/// One execution leg (primary or hedge duplicate) of one shard.  The leg's
/// task is the only writer until the completion handshake publishes it to
/// the gather; `cancel` is the cross-leg seam (set by the sibling's winning
/// CAS, read through the leg's child context).
struct LegState {
  explicit LegState(std::size_t k) : run(k) {}
  ShardRun run;
  std::atomic<bool> cancel{false};
  bool ok = false;       ///< produced a usable (possibly widened) partial
  bool clean = false;    ///< ok with no fault-driven widening
  std::uint32_t attempts = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t faults = 0;
  ShardFault last_fault = ShardFault::kNone;
  bool widened = false;  ///< missed bound widened by timeout / fault
};

/// Both legs of one shard plus the first-clean-result-wins race state.
/// Holds atomics, so slots are heap-allocated (vector elements must move).
struct ShardSlot {
  explicit ShardSlot(std::size_t k) : primary(k), hedge(k) {}
  LegState primary;
  LegState hedge;
  std::atomic<bool> primary_finished{false};  ///< release-published leg fields
  std::atomic<int> winner{-1};                ///< leg id of the first clean finisher
  bool hedge_launched = false;                ///< coordinator-thread only
};

const char* fault_name(ShardFault fault) {
  switch (fault) {
    case ShardFault::kDelay:
      return "delay";
    case ShardFault::kFail:
      return "fail";
    case ShardFault::kCorrupt:
      return "corrupt";
    case ShardFault::kNone:
      break;
  }
  return "none";
}

/// Sleeps up to `total`, waking early when the leg is cancelled, the global
/// context stopped, or the attempt's sub-context expired — an injected delay
/// or retry backoff must never stall the query past its envelope or defeat
/// hedge cancellation.  Polling in slices keeps this dependency-free (no
/// per-leg condition variable); 100us granularity is far below any
/// meaningful shard timeout.
void interruptible_wait(std::chrono::nanoseconds total, const std::atomic<bool>& cancel,
                        QueryContext& global, QueryContext* sub) {
  const auto deadline = std::chrono::steady_clock::now() + total;
  constexpr auto kSlice = std::chrono::microseconds(100);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancel.load(std::memory_order_relaxed)) return;
    if (global.stopped()) return;
    if (sub != nullptr && sub->expired()) return;
    std::this_thread::sleep_for(kSlice);
  }
}

/// The per-leg EXPLAIN row: the plain shard counters plus the fault-domain
/// events the leg observed.
void annotate_leg(const obs::Span& span, const ShardInfo& shard, const LegState& leg) {
  annotate_shard(span, shard, leg.run);
  if (!span.active()) return;
  span.annotate("attempts", static_cast<double>(leg.attempts));
  span.annotate("timeouts", static_cast<double>(leg.timeouts));
  span.annotate("faults_injected", static_cast<double>(leg.faults));
  span.annotate("bound_widened", leg.widened ? 1.0 : 0.0);
  if (leg.last_fault != ShardFault::kNone) span.note("fault", fault_name(leg.last_fault));
  if (!leg.ok) span.note("leg_outcome", "dead");
}

void publish_fault_metrics(obs::MetricsRegistry* registry, const ShardFaultStats& stats) {
  if (registry == nullptr) return;
  registry->counter("engine_shard_attempts_total").add(stats.attempts);
  registry->counter("engine_shard_retries_total").add(stats.retries);
  registry->counter("engine_shard_timeouts_total").add(stats.timeouts);
  registry->counter("engine_shard_faults_injected_total").add(stats.faults_injected);
  registry->counter("engine_shard_hedges_total").add(stats.hedges_launched);
  registry->counter("engine_shard_hedge_wins_total").add(stats.hedges_won);
  registry->counter("engine_shard_bounds_widened_total").add(stats.bounds_widened);
  registry->counter("engine_shard_failed_total").add(stats.failed_shards);
}

/// Fault-domain scatter-gather: same merge contract as the plain skeleton,
/// with per-shard attempt loops and (optionally) hedged duplicates.  With
/// zero injected faults every leg completes cleanly on its first attempt and
/// the result is byte-identical to the plain path: child contexts forward
/// every charge to the same global envelope, the shared threshold only ever
/// receives sound K-th-best values, and the gather walks shards in id order.
template <typename ShardScan, typename ShardBound>
ShardedTopK scatter_gather_faulted(const ShardedArchive& sharded, const char* stage,
                                   std::size_t k, std::uint64_t model_terms, QueryContext& ctx,
                                   CostMeter& meter, ThreadPool& pool,
                                   const ShardExecOptions& options, ShardScan&& scan_shard,
                                   ShardBound&& shard_bound) {
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), stage);
  const ShardFaultPolicy& policy = options.policy;
  const std::size_t count = sharded.shard_count();
  std::vector<std::unique_ptr<ShardSlot>> slots;
  slots.reserve(count);
  for (std::size_t s = 0; s < count; ++s) slots.push_back(std::make_unique<ShardSlot>(k));
  SharedThreshold shared;

  const int max_attempts = std::max(1, policy.max_attempts);
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.initial_backoff = policy.retry_initial_backoff;
  retry.max_backoff = policy.retry_max_backoff;
  retry.jitter_seed = policy.jitter_seed;

  // One leg's attempt loop.  Every attempt gets a fresh child context chained
  // under the global one: charges stay globally exact, a global stop latches
  // through, and the child adds the per-shard sub-deadline plus this leg's
  // cancel flag.  Work charged by attempts that are later discarded stays
  // charged — the work was really done.
  const auto run_leg = [&](std::size_t s, int leg_id, LegState& leg, ShardSlot& slot) {
    const ShardInfo& shard = sharded.shard(s);
    if (shard.tiles.empty()) {
      leg.ok = true;
      leg.clean = true;
      return;
    }
    // Distinct jitter stream per (shard, leg) so concurrent retries spread.
    ExponentialBackoff backoff(retry,
                               mix64(static_cast<std::uint64_t>(s) * 2 +
                                     static_cast<std::uint64_t>(leg_id)));
    const int attempt_base = leg_id == 0 ? 0 : kHedgeAttemptBase;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (leg.cancel.load(std::memory_order_relaxed)) return;  // sibling won
      if (ctx.stopped()) {
        // Global envelope closed before this attempt: the shard counts as
        // never examined by this leg (prior partials were discarded).
        leg.run = ShardRun(k);
        leg.run.status = ctx.stop_reason();
        leg.run.missed_bound = shard_bound(shard);
        leg.ok = true;
        return;
      }
      ++leg.attempts;
      if (attempt > 0) leg.run = ShardRun(k);  // retry scans from scratch

      ShardFaultAction action;
      if (options.chaos != nullptr) {
        action = options.chaos->on_attempt(s, attempt_base + attempt);
        if (action.kind != ShardFault::kNone) {
          ++leg.faults;
          leg.last_fault = action.kind;
        }
      }

      QueryContext sub;
      sub.with_parent(&ctx).with_cancel_flag(&leg.cancel).with_check_interval(128);
      if (policy.shard_timeout.count() > 0) sub.with_timeout(policy.shard_timeout);

      bool discarded = false;
      bool scanned = false;
      if (action.kind == ShardFault::kDelay) {
        interruptible_wait(action.delay, leg.cancel, ctx, &sub);
      } else if (action.kind == ShardFault::kFail) {
        discarded = true;
      }
      if (!discarded && !sub.expired()) {
        scan_shard(shard, leg.run, shared, sub);
        scanned = true;
        if (action.kind == ShardFault::kCorrupt) discarded = true;
      }

      if (discarded) {
        if (ctx.stopped()) {
          leg.run = ShardRun(k);
          leg.run.status = ctx.stop_reason();
          leg.run.missed_bound = shard_bound(shard);
          leg.ok = true;
          return;
        }
        if (attempt + 1 >= max_attempts) return;  // leg dead: attempts exhausted
        interruptible_wait(backoff.next_delay(), leg.cancel, ctx, nullptr);
        continue;
      }

      if (scanned && !sub.stopped()) {
        // Clean completion: first clean leg wins the shard and cancels the
        // sibling so a still-running duplicate unwinds promptly.
        leg.ok = true;
        leg.clean = true;
        int expected = -1;
        if (slot.winner.compare_exchange_strong(expected, leg_id, std::memory_order_relaxed)) {
          (leg_id == 0 ? slot.hedge : slot.primary).cancel.store(true, std::memory_order_relaxed);
        }
        return;
      }

      // The sub-context stopped: a global stop, a lost hedge race, or this
      // shard's own sub-deadline.
      if (ctx.stopped()) {
        // Global verdict; the scan kernel (if it ran) already recorded the
        // latched reason and a sound bound.
        if (!scanned) {
          leg.run.status = ctx.stop_reason();
          leg.run.missed_bound = shard_bound(shard);
        }
        leg.ok = true;
        return;
      }
      if (sub.stop_reason() == ResultStatus::kCancelled) return;  // hedge race lost
      // Per-shard timeout.  Retry while attempts remain; otherwise keep the
      // partial, remapped onto the Degraded lane with a widened bound (a
      // truncated status here would poison the whole merge — the fault is
      // local to this shard).
      ++leg.timeouts;
      if (attempt + 1 < max_attempts) {
        interruptible_wait(backoff.next_delay(), leg.cancel, ctx, nullptr);
        continue;
      }
      if (!scanned || leg.run.missed_bound == kNegInf) {
        leg.run.missed_bound = shard_bound(shard);
      }
      leg.run.status = ResultStatus::kDegraded;
      leg.widened = true;
      leg.ok = true;
      return;
    }
  };

  const bool hedging = policy.hedge && pool.worker_count() > 0;
  if (!hedging) {
    pool.parallel_for(0, count, 1, [&](std::size_t s0, std::size_t s1, std::size_t) {
      for (std::size_t s = s0; s < s1; ++s) {
        ShardSlot& slot = *slots[s];
        const std::string name = "shard_" + std::to_string(s);
        obs::Span shard_span = obs::Span::child_of(&span, name);
        run_leg(s, 0, slot.primary, slot);
        annotate_leg(shard_span, sharded.shard(s), slot.primary);
      }
    });
  } else {
    // Hedged execution runs a coordinator on the caller: primaries go to the
    // pool, and once hedge_delay elapses every shard that has not finished
    // cleanly gets a speculative duplicate through the urgent lane (a hedge
    // queued behind the backlog that made the primary straggle would be
    // useless).  Tasks decrement their counter and notify while holding the
    // mutex, so the coordinator cannot destroy the cv between a task's
    // unlock and its notify.
    std::mutex wait_mutex;
    std::condition_variable wait_cv;
    std::size_t primaries_left = count;
    std::size_t hedges_left = 0;
    for (std::size_t s = 0; s < count; ++s) {
      pool.submit([&, s] {
        {
          ShardSlot& slot = *slots[s];
          const std::string name = "shard_" + std::to_string(s);
          obs::Span shard_span = obs::Span::child_of(&span, name);
          run_leg(s, 0, slot.primary, slot);
          annotate_leg(shard_span, sharded.shard(s), slot.primary);
          slot.primary_finished.store(true, std::memory_order_release);
        }
        std::lock_guard<std::mutex> lock(wait_mutex);
        --primaries_left;
        wait_cv.notify_all();
      });
    }
    {
      std::unique_lock<std::mutex> lock(wait_mutex);
      wait_cv.wait_until(lock, std::chrono::steady_clock::now() + policy.hedge_delay,
                         [&] { return primaries_left == 0; });
    }
    for (std::size_t s = 0; s < count && !ctx.stopped(); ++s) {
      ShardSlot& slot = *slots[s];
      if (sharded.shard(s).tiles.empty()) continue;
      if (slot.primary_finished.load(std::memory_order_acquire) && slot.primary.clean) continue;
      slot.hedge_launched = true;
      {
        std::lock_guard<std::mutex> lock(wait_mutex);
        ++hedges_left;
      }
      pool.submit_urgent([&, s] {
        {
          ShardSlot& hedge_slot = *slots[s];
          // Skip if the primary won (or the query died) while this hedge
          // waited in the queue; the launch still counts as a hedge.
          if (hedge_slot.winner.load(std::memory_order_relaxed) == -1 && !ctx.stopped()) {
            const std::string name = "shard_" + std::to_string(s) + "_hedge";
            obs::Span shard_span = obs::Span::child_of(&span, name);
            run_leg(s, 1, hedge_slot.hedge, hedge_slot);
            annotate_leg(shard_span, sharded.shard(s), hedge_slot.hedge);
            if (shard_span.active()) shard_span.note("leg", "hedge");
          }
        }
        std::lock_guard<std::mutex> lock(wait_mutex);
        --hedges_left;
        wait_cv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(wait_mutex);
    wait_cv.wait(lock, [&] { return primaries_left == 0 && hedges_left == 0; });
  }

  // Gather in shard-id order (deterministic regardless of leg interleaving).
  // Leg preference: clean primary > clean hedge > widened primary > widened
  // hedge > dead.  Preferring the primary on a clean/clean tie keeps the
  // result independent of which leg happened to finish first; only the
  // chosen leg's meter and counters merge, so a cancelled duplicate's work
  // never double-counts into the answer (the global budget did see it — the
  // work was really done — but the merged top-K sees exactly one partial per
  // shard).
  ShardFaultStats stats;
  std::vector<ShardPartial> partials;
  partials.reserve(count);
  std::uint64_t pixels_visited = 0;
  std::uint64_t scan_ops = 0;
  std::size_t live_shards = 0;
  for (std::size_t s = 0; s < count; ++s) {
    ShardSlot& slot = *slots[s];
    const ShardInfo& shard = sharded.shard(s);
    if (!shard.tiles.empty()) ++live_shards;
    stats.attempts += slot.primary.attempts + slot.hedge.attempts;
    if (slot.primary.attempts > 1) stats.retries += slot.primary.attempts - 1;
    if (slot.hedge.attempts > 1) stats.retries += slot.hedge.attempts - 1;
    stats.timeouts += slot.primary.timeouts + slot.hedge.timeouts;
    stats.faults_injected += slot.primary.faults + slot.hedge.faults;
    if (slot.hedge_launched) ++stats.hedges_launched;

    LegState* pick = nullptr;
    bool hedge_pick = false;
    if (slot.primary.clean) {
      pick = &slot.primary;
    } else if (slot.hedge.clean) {
      pick = &slot.hedge;
      hedge_pick = true;
    } else if (slot.primary.ok) {
      pick = &slot.primary;
    } else if (slot.hedge.ok) {
      pick = &slot.hedge;
      hedge_pick = true;
    }
    if (hedge_pick) ++stats.hedges_won;

    ShardPartial partial;
    partial.shard_id = s;
    if (pick != nullptr) {
      ShardRun& run = pick->run;
      partial.result.hits = exec::finalize(run.top);
      partial.result.status = run.status;
      partial.result.missed_bound = run.missed_bound;
      partial.result.bad_points = run.tally.bad_points;
      partial.pixels_visited = run.tally.pixels;
      partial.tiles_scanned = run.tiles_scanned;
      partial.tiles_pruned = run.tiles_pruned;
      meter.merge(run.meter);
      pixels_visited += run.tally.pixels;
      scan_ops += run.scan_ops;
      if (pick->widened) {
        ++stats.bounds_widened;
        ++stats.degraded_shards;
      }
    } else {
      // Both legs dead: the shard contributed nothing.  An empty partial
      // with the whole-shard bound is still sound — the merge widens and
      // the certified prefix shortens accordingly.
      partial.result.status = ResultStatus::kDegraded;
      partial.result.missed_bound = shard_bound(shard);
      ++stats.failed_shards;
      ++stats.bounds_widened;
      ++stats.degraded_shards;
    }
    partials.push_back(std::move(partial));
  }

  ShardedTopK out;
  out.merged = merge_shard_partials(partials, k);
  out.shard_status.reserve(count);
  for (const ShardPartial& partial : partials) out.shard_status.push_back(partial.result.status);
  out.fault_stats = stats;
  if (live_shards > 0 && stats.failed_shards == live_shards) {
    // Every live shard died: nothing was examined anywhere, which is load
    // shedding in effect — surface it as such, not as a degraded answer with
    // a merely-finite bound.
    out.merged.status = ResultStatus::kShed;
    out.merged.missed_bound = kPosInf;
  }
  annotate_efficiency(span, sharded.archive(), model_terms, pixels_visited, scan_ops);
  annotate_result(span, out.merged, meter, count);
  publish_fault_metrics(options.metrics, stats);

  // A final "gather" child span, created after every shard/hedge span, so
  // EXPLAIN's last-status-note disposition reflects the *merged* verdict and
  // the report carries one fault-summary row per query.
  obs::Span gather = obs::Span::child_of(&span, "gather");
  if (gather.active()) {
    gather.annotate("attempts", static_cast<double>(stats.attempts));
    gather.annotate("retries", static_cast<double>(stats.retries));
    gather.annotate("timeouts", static_cast<double>(stats.timeouts));
    gather.annotate("faults_injected", static_cast<double>(stats.faults_injected));
    gather.annotate("hedges_launched", static_cast<double>(stats.hedges_launched));
    gather.annotate("hedges_won", static_cast<double>(stats.hedges_won));
    gather.annotate("bounds_widened", static_cast<double>(stats.bounds_widened));
    gather.annotate("shards_failed", static_cast<double>(stats.failed_shards));
    gather.note("status", to_string(out.merged.status));
  }
  return out;
}

/// The scatter-gather skeleton shared by the four sharded executors.
/// `scan_shard(shard, run, shared, ctx)` scans one shard with the serial
/// kernels and must leave run.status / run.missed_bound sound on truncation
/// (the context it receives is the global one on the plain path and a
/// chained per-attempt child on the fault-domain path);
/// `shard_bound(shard)` is the loosest sound missed bound over a whole
/// untouched shard (used when the context stopped before a shard started).
template <typename ShardScan, typename ShardBound>
ShardedTopK scatter_gather(const ShardedArchive& sharded, const char* stage, std::size_t k,
                           std::uint64_t model_terms, QueryContext& ctx, CostMeter& meter,
                           ThreadPool& pool, const ShardExecOptions* options,
                           ShardScan&& scan_shard, ShardBound&& shard_bound) {
  if (options != nullptr && options->active()) {
    return scatter_gather_faulted(sharded, stage, k, model_terms, ctx, meter, pool, *options,
                                  scan_shard, shard_bound);
  }
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), stage);
  const std::size_t count = sharded.shard_count();
  std::vector<ShardRun> runs;
  runs.reserve(count);
  for (std::size_t s = 0; s < count; ++s) runs.emplace_back(k);
  SharedThreshold shared;

  pool.parallel_for(0, count, 1, [&](std::size_t s0, std::size_t s1, std::size_t) {
    for (std::size_t s = s0; s < s1; ++s) {
      ShardRun& run = runs[s];
      const ShardInfo& shard = sharded.shard(s);
      // Trace has an internal mutex, so per-shard spans are safe to open
      // and close from pool workers.
      const std::string name = "shard_" + std::to_string(s);
      obs::Span shard_span = obs::Span::child_of(&span, name);
      if (!shard.tiles.empty()) {
        if (ctx.stopped()) {
          // Never started: the whole shard is unexamined.
          run.status = ctx.stop_reason();
          run.missed_bound = shard_bound(shard);
        } else {
          scan_shard(shard, run, shared, ctx);
        }
      }
      annotate_shard(shard_span, shard, run);
    }
  });

  // Gather on the caller, in shard-id order, so meter reduction and heap
  // merging are deterministic regardless of which slot ran which shard.
  std::vector<ShardPartial> partials;
  partials.reserve(count);
  std::uint64_t pixels_visited = 0;
  std::uint64_t scan_ops = 0;
  for (std::size_t s = 0; s < count; ++s) {
    ShardRun& run = runs[s];
    ShardPartial partial;
    partial.shard_id = s;
    partial.result.hits = exec::finalize(run.top);
    partial.result.status = run.status;
    partial.result.missed_bound = run.missed_bound;
    partial.result.bad_points = run.tally.bad_points;
    partial.pixels_visited = run.tally.pixels;
    partial.tiles_scanned = run.tiles_scanned;
    partial.tiles_pruned = run.tiles_pruned;
    meter.merge(run.meter);
    pixels_visited += run.tally.pixels;
    scan_ops += run.scan_ops;
    partials.push_back(std::move(partial));
  }

  ShardedTopK out;
  out.merged = merge_shard_partials(partials, k);
  out.shard_status.reserve(count);
  for (const ShardPartial& partial : partials) out.shard_status.push_back(partial.result.status);
  annotate_efficiency(span, sharded.archive(), model_terms, pixels_visited, scan_ops);
  annotate_result(span, out.merged, meter, count);
  return out;
}

}  // namespace

RasterTopK merge_shard_partials(std::span<const ShardPartial> partials, std::size_t k) {
  MMIR_EXPECTS(k > 0);
  RasterTopK out;
  TopK<RasterHit> top(k);
  double missed = kNegInf;
  std::uint64_t bad_points = 0;
  bool any_degraded = false;
  bool all_shed = !partials.empty();
  ResultStatus truncated = ResultStatus::kComplete;
  for (const ShardPartial& partial : partials) {
    for (const RasterHit& hit : partial.result.hits) top.offer(hit.score, hit);
    missed = std::max(missed, partial.result.missed_bound);
    bad_points += partial.result.bad_points;
    const ResultStatus status = partial.result.status;
    if (status != ResultStatus::kShed) all_shed = false;
    if (status == ResultStatus::kDegraded) any_degraded = true;
    if (is_truncated(status) && truncated == ResultStatus::kComplete) truncated = status;
  }
  out.hits = exec::finalize(top);
  out.missed_bound = missed;
  out.bad_points = bad_points;
  if (all_shed) {
    // Nothing examined anywhere; surface back-pressure, not a bound artifact.
    out.status = ResultStatus::kShed;
    out.missed_bound = kPosInf;
  } else if (truncated != ResultStatus::kComplete) {
    out.status = truncated;
  } else if (any_degraded) {
    out.status = ResultStatus::kDegraded;
  } else {
    out.status = ResultStatus::kComplete;
  }
  return out;
}

ShardedTopK sharded_full_scan_top_k(const ShardedArchive& sharded, const RasterModel& model,
                                    std::size_t k, QueryContext& ctx, CostMeter& meter,
                                    ThreadPool& pool, const ShardExecOptions* options) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.bands() == archive.band_count());
  const auto tiles = archive.tiles();
  const auto shard_bound = [&](const ShardInfo& shard) { return model.bound(shard.band_ranges).hi; };
  return scatter_gather(
      sharded, "sharded_full_scan", k, model.ops_per_evaluation(), ctx, meter, pool, options,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold&, QueryContext& ctx) {
        std::vector<double> scratch(archive.band_count());
        const std::uint64_t ops_before = run.meter.ops();
        for (std::size_t t : shard.tiles) {
          const TileSummary& tile = tiles[t];
          ++run.tiles_scanned;
          exec::scan_rect_full(archive, model, tile.x0, tile.x0 + tile.width, tile.y0,
                               tile.y0 + tile.height, run.top, scratch, ctx, run.meter,
                               run.tally);
          if (ctx.stopped()) break;
        }
        run.scan_ops = run.meter.ops() - ops_before;
        if (ctx.stopped()) {
          run.status = ctx.stop_reason();
          run.missed_bound = shard_bound(shard);  // covers the in-flight tile's remainder too
        } else {
          run.status = shard_completion_status(shard, run.tally.bad_points);
        }
      },
      shard_bound);
}

ShardedTopK sharded_progressive_model_top_k(const ShardedArchive& sharded,
                                            const ProgressiveLinearModel& model, std::size_t k,
                                            QueryContext& ctx, CostMeter& meter,
                                            ThreadPool& pool, const ShardExecOptions* options) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.model().dim() == archive.band_count());
  const auto tiles = archive.tiles();
  const auto shard_bound = [&](const ShardInfo& shard) {
    return model.model().evaluate_interval(shard.band_ranges).hi;
  };
  return scatter_gather(
      sharded, "sharded_progressive_model", k, model.order().size(), ctx, meter, pool, options,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold& shared, QueryContext& ctx) {
        const std::uint64_t ops_before = run.meter.ops();
        for (std::size_t t : shard.tiles) {
          const TileSummary& tile = tiles[t];
          ++run.tiles_scanned;
          exec::scan_rect_staged(
              archive, model, tile.x0, tile.x0 + tile.width, tile.y0, tile.y0 + tile.height,
              run.top, [&] { return std::max(run.top.threshold(), shared.get()); },
              [&] {
                if (run.top.full()) shared.raise(run.top.threshold());
              },
              ctx, run.meter, run.tally);
          if (ctx.stopped()) break;
        }
        run.scan_ops = run.meter.ops() - ops_before;
        if (ctx.stopped()) {
          run.status = ctx.stop_reason();
          run.missed_bound = shard_bound(shard);
        } else {
          run.status = shard_completion_status(shard, run.tally.bad_points);
        }
      },
      shard_bound);
}

namespace {

/// Screened scan of one shard: per-shard metadata pass (skipped when bounds
/// are precomputed via the shard-qualified tile cache), shard-local
/// best-bound-first order, then `scan_tile` over surviving tiles.  Shared by
/// the tile-screened and combined executors, which differ only in the
/// per-tile scan kernel and the screening model.
template <typename ScanTileFn>
void screened_shard_scan(const TiledArchive& archive, const RasterModel& screen_model,
                         const exec::TileBounds* precomputed, const ShardInfo& shard,
                         ShardRun& run, SharedThreshold& shared, QueryContext& ctx,
                         double whole_shard_bound, ScanTileFn&& scan_tile) {
  const auto tiles = archive.tiles();
  const std::uint64_t ops_per_bound = screen_model.ops_per_evaluation();

  // (upper bound, global tile index) pairs for this shard only; ties break
  // toward the lower tile index so the visit order is deterministic.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(shard.tiles.size());
  if (precomputed != nullptr) {
    for (std::size_t t : shard.tiles) order.emplace_back(precomputed->bounds[t].hi, t);
  } else {
    if (!ctx.charge(shard.tiles.size() * ops_per_bound)) {
      run.status = ctx.stop_reason();
      run.missed_bound = whole_shard_bound;
      return;
    }
    for (std::size_t t : shard.tiles) {
      order.emplace_back(screen_model.bound(tiles[t].band_range).hi, t);
      run.meter.add_ops(ops_per_bound);
    }
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });

  const std::uint64_t ops_before = run.meter.ops();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const auto [hi, t] = order[pos];
    const double threshold = std::max(run.top.threshold(), shared.get());
    if (threshold > kNegInf && hi < threshold) {
      // Sound prune: the threshold is some full all-exact heap's K-th best,
      // a lower bound on the final global K-th best.  The order is bound-
      // descending and the threshold only rises, so the rest prune too.
      // Strictly-below only — an exact tie needs the rank evidence below.
      for (std::size_t rest = pos; rest < order.size(); ++rest) {
        run.meter.add_pruned();
        ++run.tiles_pruned;
      }
      break;
    }
    if (exec::screen_tile(run.top, hi, exec::tile_min_rank(archive, tiles[t])) !=
        exec::TilePrune::kScan) {
      // Shard-local tie evidence: the tile ties this shard's own full heap
      // and cannot win the canonical rank tie-break, but a later equal-bound
      // tile with a smaller corner rank still could — prune one, keep going.
      run.meter.add_pruned();
      ++run.tiles_pruned;
      continue;
    }
    ++run.tiles_scanned;
    scan_tile(tiles[t], run);
    if (ctx.stopped()) {
      run.status = ctx.stop_reason();
      // This tile may be half-examined; its bound dominates every later
      // tile in the shard's descending order, so it covers the remainder.
      run.missed_bound = hi;
      run.scan_ops = run.meter.ops() - ops_before;
      return;
    }
    if (run.top.full()) shared.raise(run.top.threshold());
  }
  run.scan_ops = run.meter.ops() - ops_before;
  run.status = shard_completion_status(shard, run.tally.bad_points);
}

}  // namespace

ShardedTopK sharded_tile_screened_top_k(const ShardedArchive& sharded, const RasterModel& model,
                                        std::size_t k, QueryContext& ctx, CostMeter& meter,
                                        ThreadPool& pool, const exec::TileBounds* precomputed,
                                        const ShardExecOptions* options) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.bands() == archive.band_count());
  const auto shard_bound = [&](const ShardInfo& shard) { return model.bound(shard.band_ranges).hi; };
  return scatter_gather(
      sharded, "sharded_tile_screened", k, model.ops_per_evaluation(), ctx, meter, pool, options,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold& shared, QueryContext& ctx) {
        std::vector<double> scratch(archive.band_count());
        screened_shard_scan(archive, model, precomputed, shard, run, shared, ctx,
                            shard_bound(shard), [&](const TileSummary& tile, ShardRun& r) {
                              exec::scan_rect_full(archive, model, tile.x0,
                                                   tile.x0 + tile.width, tile.y0,
                                                   tile.y0 + tile.height, r.top, scratch, ctx,
                                                   r.meter, r.tally);
                            });
      },
      shard_bound);
}

ShardedTopK sharded_progressive_combined_top_k(const ShardedArchive& sharded,
                                               const ProgressiveLinearModel& model,
                                               std::size_t k, QueryContext& ctx,
                                               CostMeter& meter, ThreadPool& pool,
                                               const exec::TileBounds* precomputed,
                                               const ShardExecOptions* options) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.model().dim() == archive.band_count());
  const LinearRasterModel screen(model.model());
  const auto shard_bound = [&](const ShardInfo& shard) {
    return screen.bound(shard.band_ranges).hi;
  };
  return scatter_gather(
      sharded, "sharded_progressive_combined", k, model.order().size(), ctx, meter, pool, options,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold& shared, QueryContext& ctx) {
        screened_shard_scan(
            archive, screen, precomputed, shard, run, shared, ctx, shard_bound(shard),
            [&](const TileSummary& tile, ShardRun& r) {
              exec::scan_rect_staged(
                  archive, model, tile.x0, tile.x0 + tile.width, tile.y0,
                  tile.y0 + tile.height, r.top,
                  [&] { return std::max(r.top.threshold(), shared.get()); },
                  [&] {
                    if (r.top.full()) shared.raise(r.top.threshold());
                  },
                  ctx, r.meter, r.tally);
            });
      },
      shard_bound);
}

ShardScanResult scan_shard_partial(const ShardedArchive& sharded, std::size_t shard_id,
                                   ShardScanMode mode, const RasterModel* model,
                                   const ProgressiveLinearModel* progressive, std::size_t k,
                                   QueryContext& ctx, CostMeter& meter) {
  MMIR_EXPECTS(k > 0);
  MMIR_EXPECTS(shard_id < sharded.shard_count());
  const bool model_leg =
      mode == ShardScanMode::kProgressiveModel || mode == ShardScanMode::kCombined;
  if (model_leg) {
    MMIR_EXPECTS(progressive != nullptr);
  } else {
    MMIR_EXPECTS(model != nullptr);
  }
  const TiledArchive& archive = sharded.archive();
  const ShardInfo& shard = sharded.shard(shard_id);
  const auto tiles = archive.tiles();

  const auto shard_bound = [&]() -> double {
    switch (mode) {
      case ShardScanMode::kFullScan:
      case ShardScanMode::kTileScreened:
        return model->bound(shard.band_ranges).hi;
      case ShardScanMode::kProgressiveModel:
        return progressive->model().evaluate_interval(shard.band_ranges).hi;
      case ShardScanMode::kCombined: {
        const LinearRasterModel screen(progressive->model());
        return screen.bound(shard.band_ranges).hi;
      }
    }
    return kPosInf;
  };

  ShardScanResult out;
  out.model_terms =
      model_leg ? progressive->order().size() : model->ops_per_evaluation();
  ShardRun run(k);
  SharedThreshold shared;  // shard-local: remote legs share no threshold

  ScopedTimer timer(meter);
  const std::string name = "shard_" + std::to_string(shard_id);
  obs::Span span = obs::Span::child_of(ctx.span(), name);

  if (!shard.tiles.empty()) {
    if (ctx.stopped()) {
      run.status = ctx.stop_reason();
      run.missed_bound = shard_bound();
    } else {
      switch (mode) {
        case ShardScanMode::kFullScan: {
          std::vector<double> scratch(archive.band_count());
          const std::uint64_t ops_before = run.meter.ops();
          for (std::size_t t : shard.tiles) {
            const TileSummary& tile = tiles[t];
            ++run.tiles_scanned;
            exec::scan_rect_full(archive, *model, tile.x0, tile.x0 + tile.width, tile.y0,
                                 tile.y0 + tile.height, run.top, scratch, ctx, run.meter,
                                 run.tally);
            if (ctx.stopped()) break;
          }
          run.scan_ops = run.meter.ops() - ops_before;
          if (ctx.stopped()) {
            run.status = ctx.stop_reason();
            run.missed_bound = shard_bound();
          } else {
            run.status = shard_completion_status(shard, run.tally.bad_points);
          }
          break;
        }
        case ShardScanMode::kProgressiveModel: {
          const std::uint64_t ops_before = run.meter.ops();
          for (std::size_t t : shard.tiles) {
            const TileSummary& tile = tiles[t];
            ++run.tiles_scanned;
            exec::scan_rect_staged(
                archive, *progressive, tile.x0, tile.x0 + tile.width, tile.y0,
                tile.y0 + tile.height, run.top,
                [&] { return std::max(run.top.threshold(), shared.get()); },
                [&] {
                  if (run.top.full()) shared.raise(run.top.threshold());
                },
                ctx, run.meter, run.tally);
            if (ctx.stopped()) break;
          }
          run.scan_ops = run.meter.ops() - ops_before;
          if (ctx.stopped()) {
            run.status = ctx.stop_reason();
            run.missed_bound = shard_bound();
          } else {
            run.status = shard_completion_status(shard, run.tally.bad_points);
          }
          break;
        }
        case ShardScanMode::kTileScreened: {
          std::vector<double> scratch(archive.band_count());
          screened_shard_scan(archive, *model, nullptr, shard, run, shared, ctx,
                              shard_bound(), [&](const TileSummary& tile, ShardRun& r) {
                                exec::scan_rect_full(archive, *model, tile.x0,
                                                     tile.x0 + tile.width, tile.y0,
                                                     tile.y0 + tile.height, r.top, scratch,
                                                     ctx, r.meter, r.tally);
                              });
          break;
        }
        case ShardScanMode::kCombined: {
          const LinearRasterModel screen(progressive->model());
          screened_shard_scan(
              archive, screen, nullptr, shard, run, shared, ctx, shard_bound(),
              [&](const TileSummary& tile, ShardRun& r) {
                exec::scan_rect_staged(
                    archive, *progressive, tile.x0, tile.x0 + tile.width, tile.y0,
                    tile.y0 + tile.height, r.top,
                    [&] { return std::max(r.top.threshold(), shared.get()); },
                    [&] {
                      if (r.top.full()) shared.raise(r.top.threshold());
                    },
                    ctx, r.meter, r.tally);
              });
          break;
        }
      }
    }
  }
  annotate_shard(span, shard, run);

  out.partial.shard_id = shard_id;
  out.partial.result.hits = exec::finalize(run.top);
  out.partial.result.status = run.status;
  out.partial.result.missed_bound = run.missed_bound;
  out.partial.result.bad_points = run.tally.bad_points;
  out.partial.pixels_visited = run.tally.pixels;
  out.partial.tiles_scanned = run.tiles_scanned;
  out.partial.tiles_pruned = run.tiles_pruned;
  out.scan_ops = run.scan_ops;
  meter.merge(run.meter);
  return out;
}

// ------------------------------------------------------------ Onion / SPROC

OnionTopK sharded_onion_top_k(const ShardedOnionIndex& index, std::span<const double> weights,
                              std::size_t k, QueryContext& ctx, CostMeter& meter,
                              ThreadPool& pool) {
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "sharded_onion");
  const std::size_t count = index.shard_count();
  std::vector<OnionTopK> partials(count);
  std::vector<CostMeter> meters(count);

  pool.parallel_for(0, count, 1, [&](std::size_t s0, std::size_t s1, std::size_t) {
    for (std::size_t s = s0; s < s1; ++s) {
      const std::string name = "shard_" + std::to_string(s);
      obs::Span shard_span = obs::Span::child_of(&span, name);
      partials[s] = index.shard(s).top_k(weights, k, ctx, meters[s]);
      // Remap shard-local tuple ids back into the global id space.
      for (ScoredId& hit : partials[s].hits) hit.id = index.global_id(s, hit.id);
      if (shard_span.active()) {
        shard_span.annotate("shard", static_cast<double>(s));
        shard_span.annotate("items_examined", static_cast<double>(meters[s].points()));
        shard_span.annotate("hits", static_cast<double>(partials[s].hits.size()));
        shard_span.note("status", to_string(partials[s].status));
      }
    }
  });

  for (const CostMeter& m : meters) meter.merge(m);
  const OnionTopK out = merge_onion_partials(partials, k);
  if (span.active()) {
    span.annotate("shards", static_cast<double>(count));
    span.annotate("hits", static_cast<double>(out.hits.size()));
    span.note("status", to_string(out.status));
  }
  return out;
}

CompositeTopK sharded_composite_top_k(const CartesianQuery& query, std::size_t shards,
                                      ShardedSprocProcessor processor, std::size_t k,
                                      QueryContext& ctx, CostMeter& meter, ThreadPool& pool) {
  query.validate();
  MMIR_EXPECTS(shards > 0);
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "sharded_composite");
  // More shards than component-0 items would leave empty slices; clamp.
  const std::size_t count = std::min(shards, query.library_size);
  std::vector<CompositeTopK> partials(count);
  std::vector<CostMeter> meters(count);
  std::vector<CartesianQuery> restricted;
  restricted.reserve(count);
  for (std::size_t s = 0; s < count; ++s) restricted.push_back(restrict_to_shard(query, s, count));

  pool.parallel_for(0, count, 1, [&](std::size_t s0, std::size_t s1, std::size_t) {
    for (std::size_t s = s0; s < s1; ++s) {
      const std::string name = "shard_" + std::to_string(s);
      obs::Span shard_span = obs::Span::child_of(&span, name);
      switch (processor) {
        case ShardedSprocProcessor::kFastSproc:
          partials[s] = fast_sproc_top_k(restricted[s], k, ctx, meters[s]);
          break;
        case ShardedSprocProcessor::kSproc:
          partials[s] = sproc_top_k(restricted[s], k, ctx, meters[s]);
          break;
        case ShardedSprocProcessor::kBruteForce:
          partials[s] = brute_force_top_k(restricted[s], k, ctx, meters[s]);
          break;
      }
      // The slices are disjoint by construction (out-of-shard component-0
      // items degrade to 0 and every processor drops zero-score matches);
      // the filter is defensive hardening against a processor that ever
      // starts reporting them.
      std::erase_if(partials[s].matches, [&](const CompositeMatch& match) {
        return match.items.empty() || match.items[0] % count != s;
      });
      if (shard_span.active()) {
        shard_span.annotate("shard", static_cast<double>(s));
        shard_span.annotate("items_examined", static_cast<double>(meters[s].points()));
        shard_span.annotate("hits", static_cast<double>(partials[s].matches.size()));
        shard_span.note("status", to_string(partials[s].status));
      }
    }
  });

  for (const CostMeter& m : meters) meter.merge(m);

  CompositeTopK out;
  TopK<CompositeMatch> top(k);
  out.missed_bound = 0.0;
  ResultStatus truncated = ResultStatus::kComplete;
  bool any_degraded = false;
  for (const CompositeTopK& partial : partials) {
    for (const CompositeMatch& match : partial.matches) top.offer(match.score, match);
    out.missed_bound = std::max(out.missed_bound, partial.missed_bound);
    if (partial.status == ResultStatus::kDegraded) any_degraded = true;
    if (is_truncated(partial.status) && truncated == ResultStatus::kComplete) {
      truncated = partial.status;
    }
  }
  for (auto& entry : top.take_sorted()) out.matches.push_back(std::move(entry.item));
  out.status = truncated != ResultStatus::kComplete
                   ? truncated
                   : (any_degraded ? ResultStatus::kDegraded : ResultStatus::kComplete);
  if (span.active()) {
    span.annotate("shards", static_cast<double>(count));
    span.annotate("hits", static_cast<double>(out.matches.size()));
    span.note("status", to_string(out.status));
  }
  return out;
}

}  // namespace mmir
