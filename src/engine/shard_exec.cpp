#include "engine/shard_exec.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "sproc/brute.hpp"
#include "sproc/fast_sproc.hpp"
#include "sproc/sproc.hpp"

namespace mmir {

namespace {

using exec::kNegInf;

constexpr double kPosInf = std::numeric_limits<double>::infinity();

/// Monotone shared pruning threshold across shard tasks (same shape as the
/// tile-parallel executors'): a relaxed atomic maximum.  Stale reads only
/// weaken pruning, never soundness, because the value is always the K-th
/// best of some full all-exact heap — a lower bound on the final global
/// K-th best.
class SharedThreshold {
 public:
  [[nodiscard]] double get() const noexcept { return value_.load(std::memory_order_relaxed); }

  void raise(double candidate) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> value_{kNegInf};
};

/// Per-shard accumulation state.  Indexed by shard id — each shard is
/// processed by exactly one pool slot, so no synchronization is needed until
/// the gather (parallel_for's completion handshake publishes the writes).
struct ShardRun {
  explicit ShardRun(std::size_t k) : top(k) {}
  TopK<RasterHit> top;
  CostMeter meter;
  exec::ScanTally tally;
  std::uint64_t scan_ops = 0;
  std::uint64_t tiles_scanned = 0;
  std::uint64_t tiles_pruned = 0;
  ResultStatus status = ResultStatus::kComplete;
  double missed_bound = kNegInf;
};

/// Shard-level completion status: degraded when the shard carries poisoned
/// samples anywhere in its tiles (a pruned tile's NaN could have been
/// anything), matching the archive-level rule of exec::completion_status so
/// the merged disposition agrees with the monolithic executors.
ResultStatus shard_completion_status(const ShardInfo& shard, std::uint64_t bad_points) {
  return bad_points > 0 || shard.bad_pixels > 0 ? ResultStatus::kDegraded
                                                : ResultStatus::kComplete;
}

/// The EXPLAIN stage row of one shard: items examined/pruned (pixels whose
/// evaluation began vs never touched), tile traffic, ops, disposition.
void annotate_shard(const obs::Span& span, const ShardInfo& shard, const ShardRun& run) {
  if (!span.active()) return;
  span.annotate("shard", static_cast<double>(shard.id));
  span.annotate("items_examined", static_cast<double>(run.tally.pixels));
  span.annotate("items_pruned",
                static_cast<double>(shard.pixel_count - std::min<std::uint64_t>(
                                                            shard.pixel_count, run.tally.pixels)));
  span.annotate("tiles_scanned", static_cast<double>(run.tiles_scanned));
  span.annotate("tiles_pruned", static_cast<double>(run.tiles_pruned));
  span.annotate("meter_ops", static_cast<double>(run.meter.ops()));
  span.note("status", to_string(run.status));
}

/// Parent-span annotations: the same four §4.2 efficiency inputs the serial
/// and tile-parallel executors emit, summed across shards, so
/// obs::ExplainReport reads one vocabulary for all three execution paths.
void annotate_efficiency(const obs::Span& span, const TiledArchive& archive,
                         std::uint64_t model_terms, std::uint64_t pixels_visited,
                         std::uint64_t scan_ops) {
  if (!span.active()) return;
  span.annotate("total_pixels",
                static_cast<double>(archive.width()) * static_cast<double>(archive.height()));
  span.annotate("model_terms", static_cast<double>(model_terms));
  span.annotate("pixels_visited", static_cast<double>(pixels_visited));
  span.annotate("scan_ops", static_cast<double>(scan_ops));
}

void annotate_result(const obs::Span& span, const RasterTopK& out, const CostMeter& meter,
                     std::size_t shards) {
  if (!span.active()) return;
  span.annotate("shards", static_cast<double>(shards));
  span.annotate("hits", static_cast<double>(out.hits.size()));
  span.annotate("bad_points", static_cast<double>(out.bad_points));
  span.annotate("meter_points", static_cast<double>(meter.points()));
  span.annotate("meter_ops", static_cast<double>(meter.ops()));
  span.annotate("meter_pruned", static_cast<double>(meter.pruned()));
  span.note("status", to_string(out.status));
}

/// The scatter-gather skeleton shared by the four sharded executors.
/// `scan_shard(shard, run, shared)` scans one shard with the serial kernels
/// and must leave run.status / run.missed_bound sound on truncation;
/// `shard_bound(shard)` is the loosest sound missed bound over a whole
/// untouched shard (used when the context stopped before a shard started).
template <typename ShardScan, typename ShardBound>
ShardedTopK scatter_gather(const ShardedArchive& sharded, const char* stage, std::size_t k,
                           std::uint64_t model_terms, QueryContext& ctx, CostMeter& meter,
                           ThreadPool& pool, ShardScan&& scan_shard, ShardBound&& shard_bound) {
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), stage);
  const std::size_t count = sharded.shard_count();
  std::vector<ShardRun> runs;
  runs.reserve(count);
  for (std::size_t s = 0; s < count; ++s) runs.emplace_back(k);
  SharedThreshold shared;

  pool.parallel_for(0, count, 1, [&](std::size_t s0, std::size_t s1, std::size_t) {
    for (std::size_t s = s0; s < s1; ++s) {
      ShardRun& run = runs[s];
      const ShardInfo& shard = sharded.shard(s);
      // Trace has an internal mutex, so per-shard spans are safe to open
      // and close from pool workers.
      const std::string name = "shard_" + std::to_string(s);
      obs::Span shard_span = obs::Span::child_of(&span, name);
      if (!shard.tiles.empty()) {
        if (ctx.stopped()) {
          // Never started: the whole shard is unexamined.
          run.status = ctx.stop_reason();
          run.missed_bound = shard_bound(shard);
        } else {
          scan_shard(shard, run, shared);
        }
      }
      annotate_shard(shard_span, shard, run);
    }
  });

  // Gather on the caller, in shard-id order, so meter reduction and heap
  // merging are deterministic regardless of which slot ran which shard.
  std::vector<ShardPartial> partials;
  partials.reserve(count);
  std::uint64_t pixels_visited = 0;
  std::uint64_t scan_ops = 0;
  for (std::size_t s = 0; s < count; ++s) {
    ShardRun& run = runs[s];
    ShardPartial partial;
    partial.shard_id = s;
    partial.result.hits = exec::finalize(run.top);
    partial.result.status = run.status;
    partial.result.missed_bound = run.missed_bound;
    partial.result.bad_points = run.tally.bad_points;
    partial.pixels_visited = run.tally.pixels;
    partial.tiles_scanned = run.tiles_scanned;
    partial.tiles_pruned = run.tiles_pruned;
    meter.merge(run.meter);
    pixels_visited += run.tally.pixels;
    scan_ops += run.scan_ops;
    partials.push_back(std::move(partial));
  }

  ShardedTopK out;
  out.merged = merge_shard_partials(partials, k);
  out.shard_status.reserve(count);
  for (const ShardPartial& partial : partials) out.shard_status.push_back(partial.result.status);
  annotate_efficiency(span, sharded.archive(), model_terms, pixels_visited, scan_ops);
  annotate_result(span, out.merged, meter, count);
  return out;
}

}  // namespace

RasterTopK merge_shard_partials(std::span<const ShardPartial> partials, std::size_t k) {
  MMIR_EXPECTS(k > 0);
  RasterTopK out;
  TopK<RasterHit> top(k);
  double missed = kNegInf;
  std::uint64_t bad_points = 0;
  bool any_degraded = false;
  bool all_shed = !partials.empty();
  ResultStatus truncated = ResultStatus::kComplete;
  for (const ShardPartial& partial : partials) {
    for (const RasterHit& hit : partial.result.hits) top.offer(hit.score, hit);
    missed = std::max(missed, partial.result.missed_bound);
    bad_points += partial.result.bad_points;
    const ResultStatus status = partial.result.status;
    if (status != ResultStatus::kShed) all_shed = false;
    if (status == ResultStatus::kDegraded) any_degraded = true;
    if (is_truncated(status) && truncated == ResultStatus::kComplete) truncated = status;
  }
  out.hits = exec::finalize(top);
  out.missed_bound = missed;
  out.bad_points = bad_points;
  if (all_shed) {
    // Nothing examined anywhere; surface back-pressure, not a bound artifact.
    out.status = ResultStatus::kShed;
    out.missed_bound = kPosInf;
  } else if (truncated != ResultStatus::kComplete) {
    out.status = truncated;
  } else if (any_degraded) {
    out.status = ResultStatus::kDegraded;
  } else {
    out.status = ResultStatus::kComplete;
  }
  return out;
}

ShardedTopK sharded_full_scan_top_k(const ShardedArchive& sharded, const RasterModel& model,
                                    std::size_t k, QueryContext& ctx, CostMeter& meter,
                                    ThreadPool& pool) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.bands() == archive.band_count());
  const auto tiles = archive.tiles();
  const auto shard_bound = [&](const ShardInfo& shard) { return model.bound(shard.band_ranges).hi; };
  return scatter_gather(
      sharded, "sharded_full_scan", k, model.ops_per_evaluation(), ctx, meter, pool,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold&) {
        std::vector<double> scratch(archive.band_count());
        const std::uint64_t ops_before = run.meter.ops();
        for (std::size_t t : shard.tiles) {
          const TileSummary& tile = tiles[t];
          ++run.tiles_scanned;
          exec::scan_rect_full(archive, model, tile.x0, tile.x0 + tile.width, tile.y0,
                               tile.y0 + tile.height, run.top, scratch, ctx, run.meter,
                               run.tally);
          if (ctx.stopped()) break;
        }
        run.scan_ops = run.meter.ops() - ops_before;
        if (ctx.stopped()) {
          run.status = ctx.stop_reason();
          run.missed_bound = shard_bound(shard);  // covers the in-flight tile's remainder too
        } else {
          run.status = shard_completion_status(shard, run.tally.bad_points);
        }
      },
      shard_bound);
}

ShardedTopK sharded_progressive_model_top_k(const ShardedArchive& sharded,
                                            const ProgressiveLinearModel& model, std::size_t k,
                                            QueryContext& ctx, CostMeter& meter,
                                            ThreadPool& pool) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.model().dim() == archive.band_count());
  const auto tiles = archive.tiles();
  const auto shard_bound = [&](const ShardInfo& shard) {
    return model.model().evaluate_interval(shard.band_ranges).hi;
  };
  return scatter_gather(
      sharded, "sharded_progressive_model", k, model.order().size(), ctx, meter, pool,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold& shared) {
        const std::uint64_t ops_before = run.meter.ops();
        for (std::size_t t : shard.tiles) {
          const TileSummary& tile = tiles[t];
          ++run.tiles_scanned;
          exec::scan_rect_staged(
              archive, model, tile.x0, tile.x0 + tile.width, tile.y0, tile.y0 + tile.height,
              run.top, [&] { return std::max(run.top.threshold(), shared.get()); },
              [&] {
                if (run.top.full()) shared.raise(run.top.threshold());
              },
              ctx, run.meter, run.tally);
          if (ctx.stopped()) break;
        }
        run.scan_ops = run.meter.ops() - ops_before;
        if (ctx.stopped()) {
          run.status = ctx.stop_reason();
          run.missed_bound = shard_bound(shard);
        } else {
          run.status = shard_completion_status(shard, run.tally.bad_points);
        }
      },
      shard_bound);
}

namespace {

/// Screened scan of one shard: per-shard metadata pass (skipped when bounds
/// are precomputed via the shard-qualified tile cache), shard-local
/// best-bound-first order, then `scan_tile` over surviving tiles.  Shared by
/// the tile-screened and combined executors, which differ only in the
/// per-tile scan kernel and the screening model.
template <typename ScanTileFn>
void screened_shard_scan(const TiledArchive& archive, const RasterModel& screen_model,
                         const exec::TileBounds* precomputed, const ShardInfo& shard,
                         ShardRun& run, SharedThreshold& shared, QueryContext& ctx,
                         double whole_shard_bound, ScanTileFn&& scan_tile) {
  const auto tiles = archive.tiles();
  const std::uint64_t ops_per_bound = screen_model.ops_per_evaluation();

  // (upper bound, global tile index) pairs for this shard only; ties break
  // toward the lower tile index so the visit order is deterministic.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(shard.tiles.size());
  if (precomputed != nullptr) {
    for (std::size_t t : shard.tiles) order.emplace_back(precomputed->bounds[t].hi, t);
  } else {
    if (!ctx.charge(shard.tiles.size() * ops_per_bound)) {
      run.status = ctx.stop_reason();
      run.missed_bound = whole_shard_bound;
      return;
    }
    for (std::size_t t : shard.tiles) {
      order.emplace_back(screen_model.bound(tiles[t].band_range).hi, t);
      run.meter.add_ops(ops_per_bound);
    }
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });

  const std::uint64_t ops_before = run.meter.ops();
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const auto [hi, t] = order[pos];
    const double threshold = std::max(run.top.threshold(), shared.get());
    if (threshold > kNegInf && hi <= threshold) {
      // Sound prune: the threshold is some full all-exact heap's K-th best,
      // a lower bound on the final global K-th best.  The order is bound-
      // descending and the threshold only rises, so the rest prune too.
      for (std::size_t rest = pos; rest < order.size(); ++rest) {
        run.meter.add_pruned();
        ++run.tiles_pruned;
      }
      break;
    }
    ++run.tiles_scanned;
    scan_tile(tiles[t], run);
    if (ctx.stopped()) {
      run.status = ctx.stop_reason();
      // This tile may be half-examined; its bound dominates every later
      // tile in the shard's descending order, so it covers the remainder.
      run.missed_bound = hi;
      run.scan_ops = run.meter.ops() - ops_before;
      return;
    }
    if (run.top.full()) shared.raise(run.top.threshold());
  }
  run.scan_ops = run.meter.ops() - ops_before;
  run.status = shard_completion_status(shard, run.tally.bad_points);
}

}  // namespace

ShardedTopK sharded_tile_screened_top_k(const ShardedArchive& sharded, const RasterModel& model,
                                        std::size_t k, QueryContext& ctx, CostMeter& meter,
                                        ThreadPool& pool, const exec::TileBounds* precomputed) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.bands() == archive.band_count());
  const auto shard_bound = [&](const ShardInfo& shard) { return model.bound(shard.band_ranges).hi; };
  return scatter_gather(
      sharded, "sharded_tile_screened", k, model.ops_per_evaluation(), ctx, meter, pool,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold& shared) {
        std::vector<double> scratch(archive.band_count());
        screened_shard_scan(archive, model, precomputed, shard, run, shared, ctx,
                            shard_bound(shard), [&](const TileSummary& tile, ShardRun& r) {
                              exec::scan_rect_full(archive, model, tile.x0,
                                                   tile.x0 + tile.width, tile.y0,
                                                   tile.y0 + tile.height, r.top, scratch, ctx,
                                                   r.meter, r.tally);
                            });
      },
      shard_bound);
}

ShardedTopK sharded_progressive_combined_top_k(const ShardedArchive& sharded,
                                               const ProgressiveLinearModel& model,
                                               std::size_t k, QueryContext& ctx,
                                               CostMeter& meter, ThreadPool& pool,
                                               const exec::TileBounds* precomputed) {
  MMIR_EXPECTS(k > 0);
  const TiledArchive& archive = sharded.archive();
  MMIR_EXPECTS(model.model().dim() == archive.band_count());
  const LinearRasterModel screen(model.model());
  const auto shard_bound = [&](const ShardInfo& shard) {
    return screen.bound(shard.band_ranges).hi;
  };
  return scatter_gather(
      sharded, "sharded_progressive_combined", k, model.order().size(), ctx, meter, pool,
      [&](const ShardInfo& shard, ShardRun& run, SharedThreshold& shared) {
        screened_shard_scan(
            archive, screen, precomputed, shard, run, shared, ctx, shard_bound(shard),
            [&](const TileSummary& tile, ShardRun& r) {
              exec::scan_rect_staged(
                  archive, model, tile.x0, tile.x0 + tile.width, tile.y0,
                  tile.y0 + tile.height, r.top,
                  [&] { return std::max(r.top.threshold(), shared.get()); },
                  [&] {
                    if (r.top.full()) shared.raise(r.top.threshold());
                  },
                  ctx, r.meter, r.tally);
            });
      },
      shard_bound);
}

// ------------------------------------------------------------ Onion / SPROC

OnionTopK sharded_onion_top_k(const ShardedOnionIndex& index, std::span<const double> weights,
                              std::size_t k, QueryContext& ctx, CostMeter& meter,
                              ThreadPool& pool) {
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "sharded_onion");
  const std::size_t count = index.shard_count();
  std::vector<OnionTopK> partials(count);
  std::vector<CostMeter> meters(count);

  pool.parallel_for(0, count, 1, [&](std::size_t s0, std::size_t s1, std::size_t) {
    for (std::size_t s = s0; s < s1; ++s) {
      const std::string name = "shard_" + std::to_string(s);
      obs::Span shard_span = obs::Span::child_of(&span, name);
      partials[s] = index.shard(s).top_k(weights, k, ctx, meters[s]);
      // Remap shard-local tuple ids back into the global id space.
      for (ScoredId& hit : partials[s].hits) hit.id = index.global_id(s, hit.id);
      if (shard_span.active()) {
        shard_span.annotate("shard", static_cast<double>(s));
        shard_span.annotate("items_examined", static_cast<double>(meters[s].points()));
        shard_span.annotate("hits", static_cast<double>(partials[s].hits.size()));
        shard_span.note("status", to_string(partials[s].status));
      }
    }
  });

  for (const CostMeter& m : meters) meter.merge(m);
  const OnionTopK out = merge_onion_partials(partials, k);
  if (span.active()) {
    span.annotate("shards", static_cast<double>(count));
    span.annotate("hits", static_cast<double>(out.hits.size()));
    span.note("status", to_string(out.status));
  }
  return out;
}

CompositeTopK sharded_composite_top_k(const CartesianQuery& query, std::size_t shards,
                                      ShardedSprocProcessor processor, std::size_t k,
                                      QueryContext& ctx, CostMeter& meter, ThreadPool& pool) {
  query.validate();
  MMIR_EXPECTS(shards > 0);
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "sharded_composite");
  // More shards than component-0 items would leave empty slices; clamp.
  const std::size_t count = std::min(shards, query.library_size);
  std::vector<CompositeTopK> partials(count);
  std::vector<CostMeter> meters(count);
  std::vector<CartesianQuery> restricted;
  restricted.reserve(count);
  for (std::size_t s = 0; s < count; ++s) restricted.push_back(restrict_to_shard(query, s, count));

  pool.parallel_for(0, count, 1, [&](std::size_t s0, std::size_t s1, std::size_t) {
    for (std::size_t s = s0; s < s1; ++s) {
      const std::string name = "shard_" + std::to_string(s);
      obs::Span shard_span = obs::Span::child_of(&span, name);
      switch (processor) {
        case ShardedSprocProcessor::kFastSproc:
          partials[s] = fast_sproc_top_k(restricted[s], k, ctx, meters[s]);
          break;
        case ShardedSprocProcessor::kSproc:
          partials[s] = sproc_top_k(restricted[s], k, ctx, meters[s]);
          break;
        case ShardedSprocProcessor::kBruteForce:
          partials[s] = brute_force_top_k(restricted[s], k, ctx, meters[s]);
          break;
      }
      // The slices are disjoint by construction (out-of-shard component-0
      // items degrade to 0 and every processor drops zero-score matches);
      // the filter is defensive hardening against a processor that ever
      // starts reporting them.
      std::erase_if(partials[s].matches, [&](const CompositeMatch& match) {
        return match.items.empty() || match.items[0] % count != s;
      });
      if (shard_span.active()) {
        shard_span.annotate("shard", static_cast<double>(s));
        shard_span.annotate("items_examined", static_cast<double>(meters[s].points()));
        shard_span.annotate("hits", static_cast<double>(partials[s].matches.size()));
        shard_span.note("status", to_string(partials[s].status));
      }
    }
  });

  for (const CostMeter& m : meters) meter.merge(m);

  CompositeTopK out;
  TopK<CompositeMatch> top(k);
  out.missed_bound = 0.0;
  ResultStatus truncated = ResultStatus::kComplete;
  bool any_degraded = false;
  for (const CompositeTopK& partial : partials) {
    for (const CompositeMatch& match : partial.matches) top.offer(match.score, match);
    out.missed_bound = std::max(out.missed_bound, partial.missed_bound);
    if (partial.status == ResultStatus::kDegraded) any_degraded = true;
    if (is_truncated(partial.status) && truncated == ResultStatus::kComplete) {
      truncated = partial.status;
    }
  }
  for (auto& entry : top.take_sorted()) out.matches.push_back(std::move(entry.item));
  out.status = truncated != ResultStatus::kComplete
                   ? truncated
                   : (any_degraded ? ResultStatus::kDegraded : ResultStatus::kComplete);
  if (span.active()) {
    span.annotate("shards", static_cast<double>(count));
    span.annotate("hits", static_cast<double>(out.matches.size()));
    span.note("status", to_string(out.status));
  }
  return out;
}

}  // namespace mmir
