#pragma once
// Sharded LRU caches for the concurrent query engine.
//
// A production archive sees heavily repeated traffic: the same model over
// the same archive at the same K (dashboards, retries, fan-out replicas),
// and the same per-tile screening metadata across every query that shares a
// model.  The engine therefore keeps two caches, both built on one sharded
// LRU primitive:
//
//   * a *whole-query result cache* keyed by (archive id, model fingerprint,
//     K, executor mode) — only Complete/Degraded results are admitted, since
//     a truncated answer depends on the budget that produced it;
//   * a *tile-summary cache* keyed by (archive id, model fingerprint, tile
//     id) holding the model's screening interval for that tile, so repeat
//     queries skip the per-tile metadata pass entirely.
//
// Sharding: each shard owns an independent mutex + LRU list + hash map, and
// a key's shard is a hash prefix — concurrent queries only contend when they
// collide on a shard.  Hit/miss/insert/evict counters are kept per shard and
// aggregated on demand; executions surface their own cache traffic through
// CostMeter::add_cache_hits/misses so per-query accounting composes with the
// merge()-based worker reduction.

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linear/model.hpp"
#include "linear/progressive.hpp"
#include "util/error.hpp"

namespace mmir {

/// Aggregated counters of one cache (or one shard).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  CacheStats& operator+=(const CacheStats& other) noexcept {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    return *this;
  }

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

std::ostream& operator<<(std::ostream& os, const CacheStats& stats);

/// FNV-1a over raw bytes — the same hash family archive/io uses for its
/// checksum trailer; cheap, deterministic across runs, good enough for
/// fingerprinting model parameters.
[[nodiscard]] std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                                        std::uint64_t seed = 14695981039346656037ULL) noexcept;

/// Fingerprint of a linear model's parameters (weights + bias).
[[nodiscard]] std::uint64_t model_fingerprint(const LinearModel& model) noexcept;

/// Fingerprint of a progressive model: the underlying linear model plus the
/// stage order (two decompositions of one model screen differently).
[[nodiscard]] std::uint64_t model_fingerprint(const ProgressiveLinearModel& model) noexcept;

/// Key of one whole-query result: which archive, which model, which K, which
/// executor.  `mode` disambiguates executors because answers only agree
/// modulo exact ties.
struct QueryCacheKey {
  std::uint64_t archive_id = 0;
  std::uint64_t model_fp = 0;
  std::uint32_t k = 0;
  std::uint32_t mode = 0;
  /// ShardedArchive::layout_tag() of the execution's shard layout; 0 =
  /// monolithic.  Sharded and monolithic answers agree only modulo exact
  /// ties, so they must not alias one cache slot.
  std::uint32_t shard_layout = 0;

  friend bool operator==(const QueryCacheKey&, const QueryCacheKey&) = default;
};

struct QueryCacheKeyHash {
  std::size_t operator()(const QueryCacheKey& key) const noexcept {
    std::uint64_t h = fnv1a_bytes(&key.archive_id, sizeof(key.archive_id));
    h = fnv1a_bytes(&key.model_fp, sizeof(key.model_fp), h);
    h = fnv1a_bytes(&key.k, sizeof(key.k), h);
    h = fnv1a_bytes(&key.mode, sizeof(key.mode), h);
    return static_cast<std::size_t>(fnv1a_bytes(&key.shard_layout, sizeof(key.shard_layout), h));
  }
};

/// Key of one tile's screening summary under one model.
struct TileCacheKey {
  std::uint64_t archive_id = 0;
  std::uint64_t model_fp = 0;
  std::uint64_t tile_id = 0;
  /// Owning shard's id + 1 under the execution's layout; 0 = monolithic.
  /// Bound values are layout-independent, but qualifying the key keeps a
  /// shard's working set resident together under LRU pressure and lets a
  /// layout change be invalidated per shard.
  std::uint32_t shard = 0;

  friend bool operator==(const TileCacheKey&, const TileCacheKey&) = default;
};

struct TileCacheKeyHash {
  std::size_t operator()(const TileCacheKey& key) const noexcept {
    std::uint64_t h = fnv1a_bytes(&key.archive_id, sizeof(key.archive_id));
    h = fnv1a_bytes(&key.model_fp, sizeof(key.model_fp), h);
    h = fnv1a_bytes(&key.tile_id, sizeof(key.tile_id), h);
    return static_cast<std::size_t>(fnv1a_bytes(&key.shard, sizeof(key.shard), h));
  }
};

/// Thread-safe sharded LRU cache.  Values are returned by copy; cache large
/// payloads behind shared_ptr.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` entries total, split evenly across `shards` (each shard gets
  /// at least one slot, so tiny capacities still admit entries).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8)
      : shards_(std::max<std::size_t>(1, shards)) {
    MMIR_EXPECTS(capacity > 0);
    per_shard_capacity_ = std::max<std::size_t>(1, (capacity + shards_.size() - 1) / shards_.size());
  }

  /// Looks a key up, refreshing its recency; counts a hit or a miss.
  [[nodiscard]] std::optional<Value> get(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // move to front
    return it->second->second;
  }

  /// Inserts or refreshes an entry, evicting the shard's LRU tail on
  /// overflow.
  void put(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    ++shard.stats.insertions;
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
  }

  /// Removes an entry if present (e.g. after archive invalidation).
  bool erase(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.lru.clear();
      shard.index.clear();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      n += shard.lru.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return per_shard_capacity_ * shards_.size();
  }

  /// Aggregated hit/miss/insert/evict counters across shards.
  [[nodiscard]] CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.stats;
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<Key, Value>> lru;  ///< front = most recently used
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash> index;
    CacheStats stats;
  };

  Shard& shard_for(const Key& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_ = 0;
};

}  // namespace mmir
