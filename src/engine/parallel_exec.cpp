#include "engine/parallel_exec.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/trace.hpp"

namespace mmir {

namespace {

using exec::kNegInf;

/// Stage-close annotations of a parallel executor: result shape plus the
/// merged meter totals; per-tile and per-pixel work stays on the meters.
void annotate_result(const obs::Span& span, const RasterTopK& out, const CostMeter& meter,
                     std::size_t slots) {
  if (!span.active()) return;
  span.annotate("workers", static_cast<double>(slots));
  span.annotate("hits", static_cast<double>(out.hits.size()));
  span.annotate("bad_points", static_cast<double>(out.bad_points));
  span.annotate("meter_points", static_cast<double>(meter.points()));
  span.annotate("meter_ops", static_cast<double>(meter.ops()));
  span.annotate("meter_pruned", static_cast<double>(meter.pruned()));
  span.note("status", to_string(out.status));
}

/// Parallel twin of the serial executors' efficiency annotations: the same
/// four §4.2 inputs (n, N, pixels whose evaluation began, scan-stage ops),
/// summed across workers, so obs::ExplainReport reads one vocabulary for
/// both execution paths.
void annotate_efficiency(const obs::Span& span, const TiledArchive& archive,
                         std::uint64_t model_terms, std::uint64_t pixels_visited,
                         std::uint64_t scan_ops) {
  if (!span.active()) return;
  span.annotate("total_pixels",
                static_cast<double>(archive.width()) * static_cast<double>(archive.height()));
  span.annotate("model_terms", static_cast<double>(model_terms));
  span.annotate("pixels_visited", static_cast<double>(pixels_visited));
  span.annotate("scan_ops", static_cast<double>(scan_ops));
}

/// Monotone shared pruning threshold: a relaxed atomic maximum.  Readers may
/// observe a stale (lower) value, which only weakens pruning — never
/// soundness — so no ordering stronger than relaxed is needed.
class SharedThreshold {
 public:
  [[nodiscard]] double get() const noexcept { return value_.load(std::memory_order_relaxed); }

  void raise(double candidate) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> value_{kNegInf};
};

/// Per-worker accumulation state; one slot per pool worker + caller, indexed
/// by the parallel_for slot so no synchronization is needed until the merge.
struct WorkerState {
  explicit WorkerState(std::size_t k) : top(k) {}
  TopK<RasterHit> top;
  CostMeter meter;
  exec::ScanTally tally;
  double truncation_bound = kNegInf;
};

/// Merges per-worker heaps/meters/tallies into the final result, reducing
/// the meters with CostMeter::merge.  The global heap re-offers every local
/// entry under its original pixel rank; local heaps hold the canonical top-K
/// of their partition, so the union contains the canonical global top-K and
/// the merge is byte-identical to a serial scan.  Returns the summed tally.
exec::ScanTally merge_workers(std::vector<WorkerState>& workers, std::size_t k, RasterTopK& out,
                              CostMeter& meter) {
  TopK<RasterHit> merged(k);
  exec::ScanTally tally;
  for (WorkerState& w : workers) {
    for (auto& entry : w.top.take_sorted()) {
      merged.offer_ranked(entry.score, entry.sequence, entry.item);
    }
    meter.merge(w.meter);
    tally += w.tally;
  }
  out.bad_points += tally.bad_points;
  out.hits = exec::finalize(merged);
  return tally;
}

/// Row-band grain: a few chunks per slot for load balance without shredding
/// cache locality.
std::size_t row_grain(std::size_t height, std::size_t slots) {
  return std::max<std::size_t>(1, height / (slots * 4));
}

/// Claims tiles best-bound-first off `cursor` and scans each with `scan`
/// (signature: void(tile_index, WorkerState&)).  Returns via `state`
/// the bound of the tile being examined when the context stopped.
template <typename ScanTileFn>
void tile_claim_loop(const TiledArchive& archive, const exec::TileBounds& tb,
                     std::atomic<std::size_t>& cursor, const SharedThreshold& shared,
                     QueryContext& ctx, WorkerState& state, ScanTileFn&& scan) {
  const auto tiles = archive.tiles();
  while (!ctx.stopped()) {
    const std::size_t pos = cursor.fetch_add(1, std::memory_order_relaxed);
    if (pos >= tb.order.size()) return;
    const std::size_t t = tb.order[pos];
    const double threshold = shared.get();
    if (threshold > kNegInf && tb.bounds[t].hi < threshold) {
      // Sound prune: threshold > -inf means some worker's heap is full, so
      // the final global K-th best is at least `threshold`.  Strictly-below
      // only: a tile tying the cross-worker threshold could still win the
      // canonical rank tie-break, so it needs the local-evidence check below.
      state.meter.add_pruned();
      continue;
    }
    if (exec::screen_tile(state.top, tb.bounds[t].hi, exec::tile_min_rank(archive, tiles[t])) !=
        exec::TilePrune::kScan) {
      // Local tie/threshold evidence: this worker's own full heap certifies
      // the tile out (prune-one semantics — later claims re-check).
      state.meter.add_pruned();
      continue;
    }
    scan(t, state);
    if (ctx.stopped()) {
      // This tile may be partially examined; its bound covers the remainder.
      state.truncation_bound = std::max(state.truncation_bound, tb.bounds[t].hi);
      return;
    }
  }
}

/// Missed-score bound for a truncated tile-order run: the max bound over
/// every tile not fully examined — each worker's in-flight tile plus the
/// best unclaimed tile (claim order is descending bound, so the first
/// unclaimed position dominates all later ones).
double tile_truncation_bound(const std::vector<WorkerState>& workers, const exec::TileBounds& tb,
                             std::size_t claimed) {
  double bound = kNegInf;
  for (const WorkerState& w : workers) bound = std::max(bound, w.truncation_bound);
  if (claimed < tb.order.size()) bound = std::max(bound, tb.bounds[tb.order[claimed]].hi);
  return bound;
}

}  // namespace

RasterTopK parallel_full_scan_top_k(const TiledArchive& archive, const RasterModel& model,
                                    std::size_t k, QueryContext& ctx, CostMeter& meter,
                                    ThreadPool& pool) {
  MMIR_EXPECTS(k > 0);
  MMIR_EXPECTS(model.bands() == archive.band_count());
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "parallel_full_scan");
  RasterTopK out;
  std::vector<WorkerState> workers(pool.slot_count(), WorkerState(k));
  const std::uint64_t ops_before = meter.ops();

  pool.parallel_for(0, archive.height(), row_grain(archive.height(), pool.slot_count()),
                    [&](std::size_t y0, std::size_t y1, std::size_t slot) {
                      if (ctx.stopped()) return;
                      WorkerState& w = workers[slot];
                      std::vector<double> scratch(archive.band_count());
                      exec::scan_rect_full(archive, model, 0, archive.width(), y0, y1, w.top,
                                           scratch, ctx, w.meter, w.tally);
                    });

  const exec::ScanTally tally = merge_workers(workers, k, out, meter);
  if (ctx.stopped()) {
    out.status = ctx.stop_reason();
    out.missed_bound = exec::archive_score_bound(archive, model);
  } else {
    out.status = exec::completion_status(archive, out.bad_points);
  }
  annotate_efficiency(span, archive, model.ops_per_evaluation(), tally.pixels,
                      meter.ops() - ops_before);
  annotate_result(span, out, meter, pool.slot_count());
  return out;
}

RasterTopK parallel_progressive_model_top_k(const TiledArchive& archive,
                                            const ProgressiveLinearModel& model, std::size_t k,
                                            QueryContext& ctx, CostMeter& meter,
                                            ThreadPool& pool) {
  MMIR_EXPECTS(k > 0);
  MMIR_EXPECTS(model.model().dim() == archive.band_count());
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "parallel_progressive_model");
  RasterTopK out;
  std::vector<WorkerState> workers(pool.slot_count(), WorkerState(k));
  SharedThreshold shared;
  const std::uint64_t ops_before = meter.ops();

  pool.parallel_for(
      0, archive.height(), row_grain(archive.height(), pool.slot_count()),
      [&](std::size_t y0, std::size_t y1, std::size_t slot) {
        if (ctx.stopped()) return;
        WorkerState& w = workers[slot];
        exec::scan_rect_staged(
            archive, model, 0, archive.width(), y0, y1, w.top,
            [&] { return std::max(w.top.threshold(), shared.get()); },
            [&] {
              if (w.top.full()) shared.raise(w.top.threshold());
            },
            ctx, w.meter, w.tally);
      });

  const exec::ScanTally tally = merge_workers(workers, k, out, meter);
  if (ctx.stopped()) {
    out.status = ctx.stop_reason();
    out.missed_bound = model.model().evaluate_interval(archive.band_ranges()).hi;
  } else {
    out.status = exec::completion_status(archive, out.bad_points);
  }
  annotate_efficiency(span, archive, model.order().size(), tally.pixels,
                      meter.ops() - ops_before);
  annotate_result(span, out, meter, pool.slot_count());
  return out;
}

RasterTopK parallel_tile_screened_top_k(const TiledArchive& archive, const RasterModel& model,
                                        std::size_t k, QueryContext& ctx, CostMeter& meter,
                                        ThreadPool& pool, const exec::TileBounds* precomputed) {
  MMIR_EXPECTS(k > 0);
  MMIR_EXPECTS(model.bands() == archive.band_count());
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "parallel_tile_screened");
  RasterTopK out;
  const auto tiles = archive.tiles();
  const std::uint64_t ops_per_pixel = model.ops_per_evaluation();

  exec::TileBounds local;
  const exec::TileBounds* tb = precomputed;
  if (tb == nullptr) {
    // Metadata pass: one bound evaluation per tile (charged like the serial
    // executor; a cached-bounds run skips both the work and the charge).
    if (!ctx.charge(tiles.size() * ops_per_pixel)) {
      out.status = ctx.stop_reason();
      out.missed_bound = exec::archive_score_bound(archive, model);
      annotate_result(span, out, meter, pool.slot_count());
      return out;
    }
    obs::Span screen_span = obs::Span::child_of(&span, "metadata_screen");
    local = exec::compute_tile_bounds(archive, model, meter);
    screen_span.annotate("tiles", static_cast<double>(local.bounds.size()));
    screen_span.finish();
    tb = &local;
  } else {
    span.note("tile_bounds", "cached");
  }

  std::vector<WorkerState> workers(pool.slot_count(), WorkerState(k));
  SharedThreshold shared;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> tiles_scanned{0};
  const std::uint64_t ops_before = meter.ops();

  obs::Span scan_span = obs::Span::child_of(&span, "full_model_scan");
  pool.parallel_for(0, pool.slot_count(), 1, [&](std::size_t, std::size_t, std::size_t slot) {
    std::vector<double> scratch(archive.band_count());
    tile_claim_loop(archive, *tb, cursor, shared, ctx, workers[slot],
                    [&](std::size_t t, WorkerState& w) {
                      const TileSummary& tile = tiles[t];
                      tiles_scanned.fetch_add(1, std::memory_order_relaxed);
                      exec::scan_rect_full(archive, model, tile.x0, tile.x0 + tile.width, tile.y0,
                                           tile.y0 + tile.height, w.top, scratch, ctx, w.meter,
                                           w.tally);
                      if (w.top.full()) shared.raise(w.top.threshold());
                    });
  });
  const std::size_t scanned = tiles_scanned.load(std::memory_order_relaxed);
  scan_span.annotate("tiles_scanned", static_cast<double>(scanned));
  scan_span.annotate("tiles_pruned", static_cast<double>(tb->order.size() - scanned));
  scan_span.finish();

  const exec::ScanTally tally = merge_workers(workers, k, out, meter);
  if (ctx.stopped()) {
    out.status = ctx.stop_reason();
    out.missed_bound =
        tile_truncation_bound(workers, *tb, std::min(cursor.load(), tb->order.size()));
  } else {
    out.status = exec::completion_status(archive, out.bad_points);
  }
  annotate_efficiency(span, archive, ops_per_pixel, tally.pixels, meter.ops() - ops_before);
  annotate_result(span, out, meter, pool.slot_count());
  return out;
}

RasterTopK parallel_progressive_combined_top_k(const TiledArchive& archive,
                                               const ProgressiveLinearModel& model, std::size_t k,
                                               QueryContext& ctx, CostMeter& meter,
                                               ThreadPool& pool,
                                               const exec::TileBounds* precomputed) {
  MMIR_EXPECTS(k > 0);
  MMIR_EXPECTS(model.model().dim() == archive.band_count());
  ScopedTimer timer(meter);
  obs::Span span = obs::Span::child_of(ctx.span(), "parallel_progressive_combined");
  RasterTopK out;
  const LinearRasterModel raster_model(model.model());
  const auto tiles = archive.tiles();

  exec::TileBounds local;
  const exec::TileBounds* tb = precomputed;
  if (tb == nullptr) {
    if (!ctx.charge(tiles.size() * raster_model.ops_per_evaluation())) {
      out.status = ctx.stop_reason();
      out.missed_bound = exec::archive_score_bound(archive, raster_model);
      annotate_result(span, out, meter, pool.slot_count());
      return out;
    }
    obs::Span screen_span = obs::Span::child_of(&span, "metadata_screen");
    local = exec::compute_tile_bounds(archive, raster_model, meter);
    screen_span.annotate("tiles", static_cast<double>(local.bounds.size()));
    screen_span.finish();
    tb = &local;
  } else {
    span.note("tile_bounds", "cached");
  }

  std::vector<WorkerState> workers(pool.slot_count(), WorkerState(k));
  SharedThreshold shared;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> tiles_scanned{0};
  const std::uint64_t ops_before = meter.ops();

  obs::Span scan_span = obs::Span::child_of(&span, "staged_model_scan");
  pool.parallel_for(0, pool.slot_count(), 1, [&](std::size_t, std::size_t, std::size_t slot) {
    tile_claim_loop(
        archive, *tb, cursor, shared, ctx, workers[slot], [&](std::size_t t, WorkerState& w) {
          const TileSummary& tile = tiles[t];
          tiles_scanned.fetch_add(1, std::memory_order_relaxed);
          exec::scan_rect_staged(
              archive, model, tile.x0, tile.x0 + tile.width, tile.y0, tile.y0 + tile.height,
              w.top, [&] { return std::max(w.top.threshold(), shared.get()); },
              [&] {
                if (w.top.full()) shared.raise(w.top.threshold());
              },
              ctx, w.meter, w.tally);
        });
  });
  const std::size_t scanned = tiles_scanned.load(std::memory_order_relaxed);
  scan_span.annotate("tiles_scanned", static_cast<double>(scanned));
  scan_span.annotate("tiles_pruned", static_cast<double>(tb->order.size() - scanned));
  scan_span.finish();

  const exec::ScanTally tally = merge_workers(workers, k, out, meter);
  if (ctx.stopped()) {
    out.status = ctx.stop_reason();
    out.missed_bound =
        tile_truncation_bound(workers, *tb, std::min(cursor.load(), tb->order.size()));
  } else {
    out.status = exec::completion_status(archive, out.bad_points);
  }
  annotate_efficiency(span, archive, model.order().size(), tally.pixels,
                      meter.ops() - ops_before);
  annotate_result(span, out, meter, pool.slot_count());
  return out;
}

}  // namespace mmir
