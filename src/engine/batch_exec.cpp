#include "engine/batch_exec.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/error.hpp"

namespace mmir {

namespace {

using exec::kNegInf;

/// Mutable per-member execution state.  Everything a member's decisions read
/// is member-local (its own heap, bounds, context), so its billing and its
/// result are independent of who else rides the batch.
struct MemberState {
  explicit MemberState(const BatchMemberSpec& s)
      : spec(&s), ctx(s.ctx), meter(s.meter), top(s.k) {}

  const BatchMemberSpec* spec;
  QueryContext* ctx;  // hoisted out of spec: dereferenced per pixel
  CostMeter* meter;
  TopK<RasterHit> top;
  exec::ScanTally tally;
  std::uint64_t ops_before = 0;
  std::uint64_t tiles_scanned = 0;
  std::uint64_t tiles_pruned = 0;
  /// Shared-decode billing, accumulated over the scan and flushed to the
  /// meter once at finalize: pixels this member logically read but did not
  /// physically gather, and full-model evaluations it ran.  The flushed
  /// totals are byte-identical to per-pixel billing — the meter is only
  /// observed after batch_scan returns — but cost three counter bumps per
  /// pixel less, which is exactly the overhead the shared scan exists to
  /// shed.
  std::uint64_t shared_reads = 0;
  std::uint64_t evals = 0;

  /// Screening state (kTileScreened / kCombined).
  std::vector<Interval> local_bounds;             // own metadata pass
  const std::vector<Interval>* bounds = nullptr;  // tile-index order view
  std::unique_ptr<LinearRasterModel> owned_screen;
  const RasterModel* screen = nullptr;

  const RasterModel* full = nullptr;  // full-evaluation model (non-staged)
  /// Devirtualized view of `full` when it is the (final) linear wrapper:
  /// the per-pixel call inlines to the dot product instead of dispatching.
  const LinearRasterModel* full_linear = nullptr;
  std::uint64_t ops_per_pixel = 0;    // full-model ops (charge unit)
  double domain_bound = kNegInf;      // sound pre-metadata missed bound

  std::size_t subset_pos = 0;  // cursor into tile_subset (ascending)
  bool screened = false;
  bool staged = false;
  /// Full-model member whose context can never trip: charged per tile in
  /// one aggregate instead of per pixel (same spent() total, no trip to
  /// mistime, one atomic where the solo path pays thousands).
  bool bulk_charged = false;
  bool done = false;     // finished its tiles or tripped
  bool stopped = false;  // tripped (budget / deadline / cancel)
  bool scan_trip = false;
  std::size_t trip_tile = 0;  // global tile index at a scan-stage trip
};

/// Whether the member participates in tile `t`; advances the subset cursor
/// (tiles arrive in ascending index order, matching the subset's order).
bool wants_tile(MemberState& m, std::size_t t) {
  const std::vector<std::size_t>* subset = m.spec->tile_subset;
  if (subset == nullptr) return true;
  while (m.subset_pos < subset->size() && (*subset)[m.subset_pos] < t) ++m.subset_pos;
  if (m.subset_pos >= subset->size()) {
    m.done = true;  // subset exhausted: the member completed its domain
    return false;
  }
  if ((*subset)[m.subset_pos] != t) return false;
  ++m.subset_pos;
  return true;
}

void trip(MemberState& m, std::size_t t) {
  m.done = true;
  m.stopped = true;
  m.scan_trip = true;
  m.trip_tile = t;
}

/// Sound missed-score bound after a screened member's scan-stage trip: the
/// max screening bound over its tiles from the trip tile on.  Earlier tiles
/// were fully scanned or certified out; the trip tile (possibly half
/// examined) and everything after are covered by their bounds.
double screened_trip_bound(const TiledArchive& archive, const MemberState& m) {
  double bound = kNegInf;
  const std::vector<Interval>& bounds = *m.bounds;
  if (const std::vector<std::size_t>* subset = m.spec->tile_subset) {
    for (std::size_t t : *subset) {
      if (t >= m.trip_tile) bound = std::max(bound, bounds[t].hi);
    }
  } else {
    for (std::size_t t = m.trip_tile; t < archive.tiles().size(); ++t) {
      bound = std::max(bound, bounds[t].hi);
    }
  }
  return bound;
}

/// The solo executors' span vocabulary, so a batched member's EXPLAIN reads
/// like a solo run: §4.2 efficiency inputs + result shape + meter totals.
void annotate_member(const obs::Span* span, const TiledArchive& archive, const MemberState& m,
                     const BatchMemberResult& r, std::uint64_t model_terms) {
  if (span == nullptr || !span->active()) return;
  span->annotate("total_pixels",
                 static_cast<double>(archive.width()) * static_cast<double>(archive.height()));
  span->annotate("model_terms", static_cast<double>(model_terms));
  span->annotate("pixels_visited", static_cast<double>(r.pixels_visited));
  span->annotate("scan_ops", static_cast<double>(r.scan_ops));
  span->annotate("k", static_cast<double>(m.spec->k));
  span->annotate("tiles_scanned", static_cast<double>(r.tiles_scanned));
  span->annotate("tiles_pruned", static_cast<double>(r.tiles_pruned));
  span->annotate("hits", static_cast<double>(r.result.hits.size()));
  span->annotate("bad_points", static_cast<double>(r.result.bad_points));
  const CostMeter& meter = *m.spec->meter;
  span->annotate("meter_points", static_cast<double>(meter.points()));
  span->annotate("meter_ops", static_cast<double>(meter.ops()));
  span->annotate("meter_pruned", static_cast<double>(meter.pruned()));
  span->note("status", to_string(r.result.status));
  switch (m.spec->mode) {
    case BatchScanMode::kFullScan: span->note("mode", "full_scan"); break;
    case BatchScanMode::kProgressiveModel: span->note("mode", "progressive_model"); break;
    case BatchScanMode::kTileScreened: span->note("mode", "tile_screened"); break;
    case BatchScanMode::kCombined: span->note("mode", "progressive_combined"); break;
  }
}

}  // namespace

std::vector<BatchMemberResult> batch_scan(const TiledArchive& archive,
                                          std::span<const BatchMemberSpec> members) {
  std::vector<BatchMemberResult> out(members.size());
  if (members.empty()) return out;
  const auto tiles = archive.tiles();
  const std::size_t band_count = archive.band_count();

  // ---- Per-member setup + metadata stage -------------------------------
  std::vector<MemberState> states;
  states.reserve(members.size());
  for (const BatchMemberSpec& spec : members) {
    MMIR_EXPECTS(spec.k > 0);
    MMIR_EXPECTS(spec.ctx != nullptr && spec.meter != nullptr);
    MemberState& m = states.emplace_back(spec);
    m.staged = spec.mode == BatchScanMode::kProgressiveModel ||
               spec.mode == BatchScanMode::kCombined;
    m.screened = spec.mode == BatchScanMode::kTileScreened ||
                 spec.mode == BatchScanMode::kCombined;
    if (m.staged) {
      MMIR_EXPECTS(spec.progressive != nullptr);
      MMIR_EXPECTS(spec.progressive->model().dim() == band_count);
    } else {
      MMIR_EXPECTS(spec.model != nullptr);
      MMIR_EXPECTS(spec.model->bands() == band_count);
      m.full = spec.model;
      m.full_linear = dynamic_cast<const LinearRasterModel*>(spec.model);
      m.ops_per_pixel = spec.model->ops_per_evaluation();
      m.bulk_charged = spec.ctx->unbounded();
    }
    switch (spec.mode) {
      case BatchScanMode::kTileScreened:
        m.screen = spec.model;
        break;
      case BatchScanMode::kCombined:
        m.owned_screen = std::make_unique<LinearRasterModel>(spec.progressive->model());
        m.screen = m.owned_screen.get();
        break;
      default:
        break;
    }

    const std::span<const Interval> ranges =
        spec.domain_ranges != nullptr ? std::span<const Interval>(*spec.domain_ranges)
                                      : archive.band_ranges();
    // An empty domain (e.g. a tile-less shard) has no scoreable pixels and no
    // per-band hull to bound them with; kNegInf is the exact missed bound.
    if (ranges.size() != band_count) {
      m.ops_before = spec.meter->ops();
      continue;
    }
    switch (spec.mode) {
      case BatchScanMode::kFullScan:
      case BatchScanMode::kTileScreened:
        m.domain_bound = spec.model->bound(ranges).hi;
        break;
      case BatchScanMode::kProgressiveModel:
        m.domain_bound = spec.progressive->model().evaluate_interval(ranges).hi;
        break;
      case BatchScanMode::kCombined:
        m.domain_bound = m.screen->bound(ranges).hi;
        break;
    }

    if (m.screened) {
      if (spec.precomputed_bounds != nullptr) {
        // Cache-served bounds: like a solo cached run, neither work nor
        // charge (the engine billed cache traffic on the member's meter).
        m.bounds = &spec.precomputed_bounds->bounds;
      } else {
        // Member-paid metadata pass over its own tiles, billed exactly like
        // the solo executors: one screening-bound evaluation per tile.
        const std::uint64_t ops_per_bound = m.screen->ops_per_evaluation();
        const std::size_t tile_count =
            spec.tile_subset != nullptr ? spec.tile_subset->size() : tiles.size();
        if (!spec.ctx->charge(tile_count * ops_per_bound)) {
          m.done = true;
          m.stopped = true;  // metadata trip: no bounds, domain bound covers
        } else {
          m.local_bounds.assign(tiles.size(), Interval::point(0.0));
          if (spec.tile_subset != nullptr) {
            for (std::size_t t : *spec.tile_subset) {
              m.local_bounds[t] = m.screen->bound(tiles[t].band_range);
              spec.meter->add_ops(ops_per_bound);
            }
          } else {
            for (std::size_t t = 0; t < tiles.size(); ++t) {
              m.local_bounds[t] = m.screen->bound(tiles[t].band_range);
              spec.meter->add_ops(ops_per_bound);
            }
          }
          m.bounds = &m.local_bounds;
        }
      }
    }
    m.ops_before = spec.meter->ops();
  }

  // ---- Shared scan: every tile visited once, in tile-index order -------
  std::vector<double> scratch(band_count);
  std::vector<MemberState*> needing;
  needing.reserve(states.size());
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const TileSummary& tile = tiles[t];
    needing.clear();
    for (MemberState& m : states) {
      if (m.done || !wants_tile(m, t)) continue;
      if (m.screened) {
        if (exec::screen_tile(m.top, (*m.bounds)[t].hi, exec::tile_min_rank(archive, tile)) !=
            exec::TilePrune::kScan) {
          // Certified out for THIS member only; batch-mates may still need
          // the tile.  Tile-index order is not bound-descending, so even a
          // strict prune certifies just this tile.
          m.meter->add_pruned();
          ++m.tiles_pruned;
          continue;
        }
      }
      ++m.tiles_scanned;
      if (m.bulk_charged) {
        (void)m.ctx->charge(static_cast<std::uint64_t>(tile.width) * tile.height *
                            m.ops_per_pixel);
      }
      needing.push_back(&m);
    }
    if (needing.empty()) {
      bool any_open = false;
      for (const MemberState& m : states) any_open |= !m.done;
      if (!any_open) break;
      continue;
    }

    for (std::size_t y = tile.y0; y < tile.y0 + tile.height; ++y) {
      for (std::size_t x = tile.x0; x < tile.x0 + tile.width; ++x) {
        const std::uint64_t rank = exec::pixel_rank(archive, x, y);
        bool decoded = false;
        for (MemberState* mp : needing) {
          MemberState& m = *mp;
          if (m.done) continue;
          QueryContext& ctx = *m.ctx;
          CostMeter& meter = *m.meter;
          if (m.staged) {
            // Mirrors exec::scan_rect_staged with the member-local
            // threshold: staged evaluation reads bands term by term, so it
            // shares no decode with the full-model members.
            ++m.tally.pixels;
            const double score = exec::staged_pixel(archive, *m.spec->progressive, x, y,
                                                    m.top.threshold(), ctx, meter);
            if (ctx.stopped()) {
              trip(m, t);
              continue;
            }
            if (!std::isfinite(score)) {
              ctx.note_bad_points();
              ++m.tally.bad_points;
              continue;
            }
            if (score >= m.top.threshold()) {
              m.top.offer_ranked(score, rank, RasterHit{x, y, score});
            }
          } else {
            // Mirrors exec::scan_rect_full, except the physical gather runs
            // once per pixel; every member is billed its full logical read
            // so its meter matches a solo run byte for byte.
            if (!m.bulk_charged && !ctx.charge(m.ops_per_pixel)) {
              trip(m, t);
              continue;
            }
            ++m.tally.pixels;
            if (!decoded) {
              archive.read_pixel(x, y, scratch, meter);
              decoded = true;
            } else {
              ++m.shared_reads;
            }
            const double score = m.full_linear != nullptr ? m.full_linear->evaluate(scratch)
                                                          : m.full->evaluate(scratch);
            ++m.evals;
            if (!std::isfinite(score)) {
              ctx.note_bad_points();
              ++m.tally.bad_points;
              continue;
            }
            m.top.offer_ranked(score, rank, RasterHit{x, y, score});
          }
        }
      }
    }
  }

  // ---- Finalize each member exactly like its solo executor -------------
  for (std::size_t i = 0; i < states.size(); ++i) {
    MemberState& m = states[i];
    BatchMemberResult& r = out[i];
    // Flush the deferred shared-decode billing before anything reads the
    // meter; the totals equal per-pixel billing byte for byte.
    if (m.shared_reads > 0) {
      m.meter->add_points(m.shared_reads * band_count);
      m.meter->add_bytes(m.shared_reads * band_count * sizeof(double));
    }
    if (m.evals > 0) m.meter->add_ops(m.evals * m.ops_per_pixel);
    r.result.bad_points = m.tally.bad_points;
    r.result.hits = exec::finalize(m.top);
    r.scan_ops = m.meter->ops() - m.ops_before;
    r.pixels_visited = m.tally.pixels;
    r.tiles_scanned = m.tiles_scanned;
    r.tiles_pruned = m.tiles_pruned;
    std::uint64_t model_terms = 0;
    if (m.staged) {
      model_terms = m.spec->progressive->order().size();
    } else {
      model_terms = m.full->ops_per_evaluation();
    }
    if (m.stopped) {
      r.result.status = m.spec->ctx->stop_reason();
      r.result.missed_bound = m.screened && m.scan_trip && m.bounds != nullptr
                                  ? screened_trip_bound(archive, m)
                                  : m.domain_bound;
    } else {
      const std::uint64_t domain_bad =
          m.spec->domain_bad_pixels == BatchMemberSpec::kDomainBadFromArchive
              ? archive.bad_pixel_count()
              : m.spec->domain_bad_pixels;
      r.result.status = m.tally.bad_points > 0 || domain_bad > 0 ? ResultStatus::kDegraded
                                                                 : ResultStatus::kComplete;
    }
    annotate_member(m.spec->span, archive, m, r, model_terms);
  }
  return out;
}

}  // namespace mmir
