#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace mmir {

ThreadPool::ThreadPool(std::size_t workers) {
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    // Empty critical section: pairs with the wait in worker_loop so no
    // worker can re-check its predicate between our store and notify.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (queues_.empty()) {
    task();  // zero-worker pool: degrade to inline execution
    return;
  }
  const std::size_t target = push_cursor_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

void ThreadPool::submit_urgent(std::function<void()> task) {
  if (queues_.empty()) {
    task();  // zero-worker pool: degrade to inline execution
    return;
  }
  {
    std::lock_guard<std::mutex> lock(urgent_.mutex);
    urgent_.tasks.push_back(std::move(task));
  }
  urgent_count_.fetch_add(1, std::memory_order_release);
  pending_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Urgent lane first: these tasks are latency-critical by contract and must
  // not wait behind any queue's backlog.  The atomic pre-check keeps the
  // common no-urgent-work path lock-free.
  if (urgent_count_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(urgent_.mutex);
    if (!urgent_.tasks.empty()) {
      out = std::move(urgent_.tasks.front());
      urgent_.tasks.pop_front();
      urgent_count_.fetch_sub(1, std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Own queue next, newest task (LIFO keeps the owner's cache warm)…
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // …then steal the *oldest* task from a sibling (FIFO steals take the task
  // most likely to fan out into further work).
  for (std::size_t i = 1; i < queues_.size(); ++i) {
    WorkerQueue& victim = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;  // drained: every queued task ran before shutdown
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;

  struct ForState {
    std::atomic<std::size_t> next;
    std::size_t end = 0;
    std::size_t grain = 0;
    std::size_t total = 0;
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> next_slot{0};
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->total = total;
  state->body = &body;

  // Each runner claims chunks off the shared cursor until none remain.  The
  // caller is always one of the runners, so completion never depends on a
  // pool worker being free.  Late-running stolen/queued runners find the
  // cursor exhausted and exit without touching `body` (which may be gone).
  auto run = [](const std::shared_ptr<ForState>& st) {
    const std::size_t slot = st->next_slot.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      const std::size_t lo = st->next.fetch_add(st->grain, std::memory_order_relaxed);
      if (lo >= st->end) return;
      const std::size_t hi = std::min(lo + st->grain, st->end);
      (*st->body)(lo, hi, slot);
      if (st->done.fetch_add(hi - lo, std::memory_order_acq_rel) + (hi - lo) == st->total) {
        std::lock_guard<std::mutex> lock(st->mutex);
        st->cv.notify_all();
      }
    }
  };

  const std::size_t chunks = (total + grain - 1) / grain;
  const std::size_t helpers = std::min(worker_count(), chunks > 1 ? chunks - 1 : 0);
  for (std::size_t i = 0; i < helpers; ++i) submit([state, run] { run(state); });
  run(state);  // the calling thread participates

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock,
                 [&] { return state->done.load(std::memory_order_acquire) == state->total; });
}

}  // namespace mmir
