#pragma once
// Scatter-gather query execution over a ShardedArchive.
//
// Each of the four executor modes (core/progressive_exec.hpp) has a sharded
// twin: the shards of a ShardedArchive are scattered across the engine's
// ThreadPool, every shard runs the *serial* scan kernels over its own tiles
// into a private top-K heap, and a gather step merges the partial heaps into
// one global top-K.  All shard tasks share one QueryContext, so the op budget
// and deadline are enforced globally — shards draw slices from the shared
// budget atomically instead of receiving static S-way splits, which keeps a
// fast shard from stranding budget a slow shard needed.
//
// Soundness of the merge (proof sketch in DESIGN.md §6e):
//   * each shard's partial is the exact top-K of the pixels it examined, plus
//     a sound missed-score bound over the pixels it did not;
//   * tiles partition across shards, so the union of partials contains the
//     global top-K of all examined pixels;
//   * the merged missed bound is the max of the per-shard bounds — any
//     unexamined pixel lives in exactly one shard and is covered by that
//     shard's bound.  A budget-hit shard therefore *widens* the global bound
//     (max is monotone) and can only shorten, never corrupt, the certified
//     prefix.
// Cross-shard pruning uses the same shared monotone threshold as the
// tile-parallel executors: a stale read weakens pruning, never soundness.
//
// Fault domains (DESIGN.md §6f): when a ShardExecOptions with an active
// policy/chaos hook is passed, every shard becomes an independent fault
// domain — per-shard sub-deadline, capped-backoff retries with seeded
// jitter, and optional hedged duplicates of stragglers through the pool's
// urgent lane.  A shard that exhausts its attempt budget contributes an
// empty (or partial) result with status kDegraded and its whole-shard bound,
// which *widens* the merged missed bound: the certified prefix shortens but
// stays sound.  With no options (or an inactive one) the legacy path runs
// and answers are byte-identical to before.
//
// Per-shard ResultStatus propagates into the query-level disposition: any
// truncated shard truncates the merge (the shared context's latched reason),
// else any degraded shard degrades it, else the query is complete.  EXPLAIN
// sees one child span per shard ("shard_<id>") with items examined/pruned;
// the parent span carries the summed §4.2 efficiency inputs so the pm·pd
// decomposition reconciles exactly as it does for the monolithic executors.
//
// Scatter-gather twins for the other retrieval families ride along:
// per-shard Onion indexes (index/onion.hpp ShardedOnionIndex) queried in
// parallel, and composite (SPROC) queries partitioned over the component-0
// item domain — both merged at gather with the same max-of-bounds rule.

#include <cstdint>
#include <span>
#include <vector>

#include "archive/sharded.hpp"
#include "core/exec_kernels.hpp"
#include "core/progressive_exec.hpp"
#include "engine/fault_domain.hpp"
#include "engine/thread_pool.hpp"
#include "index/onion.hpp"
#include "sproc/query.hpp"

namespace mmir {

/// One shard's contribution to a sharded raster execution: its partial top-K
/// (with per-shard status and missed bound) plus the gather-side counters
/// EXPLAIN renders per shard.
struct ShardPartial {
  std::size_t shard_id = 0;
  RasterTopK result;
  std::uint64_t pixels_visited = 0;
  std::uint64_t tiles_scanned = 0;
  std::uint64_t tiles_pruned = 0;
};

/// Merges per-shard partials into a global top-K of size at most `k`.
/// Deterministic given its inputs: partials are offered in shard order, so
/// exact score ties break toward the lower shard id.  The merged missed
/// bound is the max over shard bounds; the disposition is the first
/// truncated shard's status if any shard truncated, else degraded if any
/// shard degraded, else complete (all-shed merges stay kShed).  Exposed as a
/// pure function so merge soundness is unit-testable in isolation
/// (tests/test_shard_merge.cpp).
[[nodiscard]] RasterTopK merge_shard_partials(std::span<const ShardPartial> partials,
                                              std::size_t k);

/// Result of a sharded raster execution: the merged global answer plus the
/// per-shard dispositions the merge folded together and the fault-domain
/// bookkeeping of the run.  fault_stats stays default (all-zero) on the
/// legacy no-options path and on engine cache-hit replays, which never
/// re-execute shards.
struct ShardedTopK {
  RasterTopK merged;
  std::vector<ResultStatus> shard_status;  ///< indexed by shard id
  ShardFaultStats fault_stats;
};

/// Sharded twins of the four executors.  Answers are identical to the serial
/// monolithic executors modulo exact ties (the shard-parity property suite
/// checks byte-identity on tie-free inputs).  The tile-screened/combined
/// forms accept optional precomputed per-tile bounds indexed by *global* tile
/// id, as served shard-qualified by the engine's tile cache.  `options`
/// (nullable) switches on the fault-domain path; see the header comment.
[[nodiscard]] ShardedTopK sharded_full_scan_top_k(const ShardedArchive& sharded,
                                                  const RasterModel& model, std::size_t k,
                                                  QueryContext& ctx, CostMeter& meter,
                                                  ThreadPool& pool,
                                                  const ShardExecOptions* options = nullptr);
[[nodiscard]] ShardedTopK sharded_progressive_model_top_k(const ShardedArchive& sharded,
                                                          const ProgressiveLinearModel& model,
                                                          std::size_t k, QueryContext& ctx,
                                                          CostMeter& meter, ThreadPool& pool,
                                                          const ShardExecOptions* options =
                                                              nullptr);
[[nodiscard]] ShardedTopK sharded_tile_screened_top_k(const ShardedArchive& sharded,
                                                      const RasterModel& model, std::size_t k,
                                                      QueryContext& ctx, CostMeter& meter,
                                                      ThreadPool& pool,
                                                      const exec::TileBounds* precomputed =
                                                          nullptr,
                                                      const ShardExecOptions* options = nullptr);
[[nodiscard]] ShardedTopK sharded_progressive_combined_top_k(
    const ShardedArchive& sharded, const ProgressiveLinearModel& model, std::size_t k,
    QueryContext& ctx, CostMeter& meter, ThreadPool& pool,
    const exec::TileBounds* precomputed = nullptr, const ShardExecOptions* options = nullptr);

/// The four executor modes, addressable without dragging the scheduler
/// header in (values mirror RasterJob::Mode).  This is the mode a shard
/// server receives over the wire.
enum class ShardScanMode : std::uint8_t {
  kFullScan = 0,
  kProgressiveModel = 1,
  kTileScreened = 2,
  kCombined = 3,
};

/// Result of serially scanning ONE shard: the partial the gather-side merge
/// consumes plus the §4.2 efficiency inputs (scan_ops, model_terms) a remote
/// router re-annotates on its own spans.
struct ShardScanResult {
  ShardPartial partial;
  std::uint64_t scan_ops = 0;
  std::uint64_t model_terms = 0;
};

/// Serially scans one shard of `sharded` with the same kernels, accounting,
/// and status rules as the in-process executors — the unit of work a
/// ShardServer runs per request.  The pruning threshold is shard-local (no
/// cross-process shared threshold exists), which weakens pruning but never
/// soundness: a complete shard still returns its exact top-K, so the remote
/// merge equals the in-process merge.  `model` is required for
/// kFullScan/kTileScreened, `progressive` for kProgressiveModel/kCombined.
/// Opens a "shard_<id>" span under ctx's span for EXPLAIN.
[[nodiscard]] ShardScanResult scan_shard_partial(const ShardedArchive& sharded,
                                                 std::size_t shard_id, ShardScanMode mode,
                                                 const RasterModel* model,
                                                 const ProgressiveLinearModel* progressive,
                                                 std::size_t k, QueryContext& ctx,
                                                 CostMeter& meter);

/// Scatter-gather over a ShardedOnionIndex: every per-shard index is queried
/// on the pool, hits are remapped to global tuple ids, and the partials merge
/// under the max-of-bounds rule.  Equals the monolithic OnionIndex answer
/// modulo exact ties.
[[nodiscard]] OnionTopK sharded_onion_top_k(const ShardedOnionIndex& index,
                                            std::span<const double> weights, std::size_t k,
                                            QueryContext& ctx, CostMeter& meter,
                                            ThreadPool& pool);

/// Which composite processor each shard runs (mirrors CompositeJob::Processor
/// without dragging the scheduler header in).
enum class ShardedSprocProcessor : std::uint8_t { kFastSproc = 0, kSproc = 1, kBruteForce = 2 };

/// Scatter-gather composite retrieval: the library's component-0 domain is
/// partitioned round-robin across `shards` (sproc restrict_to_shard), each
/// slice runs the chosen processor independently on the pool, and the gather
/// keeps each shard's own candidates and merges them.  Scores equal the
/// monolithic processors' (same_scores) because the slices partition the
/// candidate space.
[[nodiscard]] CompositeTopK sharded_composite_top_k(const CartesianQuery& query,
                                                    std::size_t shards,
                                                    ShardedSprocProcessor processor,
                                                    std::size_t k, QueryContext& ctx,
                                                    CostMeter& meter, ThreadPool& pool);

}  // namespace mmir
