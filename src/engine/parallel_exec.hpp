#pragma once
// Tile-parallel variants of the four progressive raster executors
// (core/progressive_exec.hpp).
//
// The paper's efficiency model O(nN/(pm·pd)) treats the archive as a set of
// independently screenable tiles — embarrassingly parallel structure the
// serial executors leave on the table.  Each parallel executor partitions
// the TiledArchive across the workers of a ThreadPool (plus the calling
// thread), runs the *same* per-tile kernels as its serial counterpart
// (core/exec_kernels.hpp) with per-worker top-K heaps and CostMeters, and
// merges the heaps and meters after the join.
//
// Soundness of cross-worker pruning: workers publish the threshold of their
// *full* local heap into a shared relaxed atomic maximum.  A full local heap
// of size K holds K scores ≥ its threshold, so the global K-th best is ≥
// any published value — pruning against the shared threshold can only
// discard candidates that provably cannot enter the final top-K.  A stale
// read only *weakens* pruning (more work, same answer), which is why relaxed
// ordering suffices.  Completed parallel runs therefore return top-K sets
// identical to the serial executors' (modulo exact ties).
//
// All workers share one QueryContext (concurrency-safe, see
// core/query_context.hpp): the first worker whose charge fails latches the
// stop reason and every other worker unwinds at its next charge.  Truncated
// results carry the same kind of sound missed-score bound as the serial
// executors — for tile-order executors, the max bound over tiles not fully
// examined; for scan-order executors, the archive-level model bound.

#include <cstddef>

#include "core/exec_kernels.hpp"
#include "core/progressive_exec.hpp"
#include "engine/thread_pool.hpp"

namespace mmir {

/// Parallel full scan: rows are chunked across workers; no pruning, so the
/// only shared state is the QueryContext.
[[nodiscard]] RasterTopK parallel_full_scan_top_k(const TiledArchive& archive,
                                                  const RasterModel& model, std::size_t k,
                                                  QueryContext& ctx, CostMeter& meter,
                                                  ThreadPool& pool);

/// Parallel progressive-model scan: rows chunked across workers, staged
/// per-pixel evaluation abandons against max(local, shared) threshold.
[[nodiscard]] RasterTopK parallel_progressive_model_top_k(const TiledArchive& archive,
                                                          const ProgressiveLinearModel& model,
                                                          std::size_t k, QueryContext& ctx,
                                                          CostMeter& meter, ThreadPool& pool);

/// Parallel tile screening: workers claim tiles best-bound-first off a
/// shared cursor, prune against the shared threshold, full model inside.
/// `precomputed` (optional) supplies cached per-tile bounds — the engine's
/// tile-summary cache path — skipping the metadata pass and its charge.
[[nodiscard]] RasterTopK parallel_tile_screened_top_k(const TiledArchive& archive,
                                                      const RasterModel& model, std::size_t k,
                                                      QueryContext& ctx, CostMeter& meter,
                                                      ThreadPool& pool,
                                                      const exec::TileBounds* precomputed = nullptr);

/// Parallel combined executor: tile screening outside, staged terms inside.
[[nodiscard]] RasterTopK parallel_progressive_combined_top_k(
    const TiledArchive& archive, const ProgressiveLinearModel& model, std::size_t k,
    QueryContext& ctx, CostMeter& meter, ThreadPool& pool,
    const exec::TileBounds* precomputed = nullptr);

}  // namespace mmir
