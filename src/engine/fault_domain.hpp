#pragma once
// Shard fault domains: the vocabulary that turns every shard of a sharded
// scatter-gather execution into an independently failing unit.
//
// A ShardFaultPolicy gives each shard task its own *sub-deadline* and
// *attempt budget* inside the query's global envelope, plus optional hedged
// (speculative duplicate) execution of straggler shards.  A shard that times
// out or exhausts its attempts is mapped onto the existing Degraded/Shed
// status precedence by *widening the missed-score bound* to cover whatever
// the shard did not examine — the merged result stays sound (its certified
// prefix only shortens), and a slow shard degrades the answer instead of
// blocking it.  Deliberately NOT mapped to a truncated status: kShed/kTrunc*
// poison the whole merge via is_truncated(), while a fault is local to one
// shard.
//
// ShardChaos is the injection seam: a deterministic, seed-scheduled source
// of per-(shard, attempt) delay/fail/corrupt faults.  The contract is that a
// decision is a pure function of (seed, shard, attempt) — never of wall
// clock or thread interleaving — so a chaos schedule replays identically
// under any worker count (src/testing/fault_injector.hpp ChaosPolicy is the
// canonical implementation).  With chaos disabled and no faults firing, the
// fault-domain execution path returns byte-identical results to the plain
// scatter-gather (tests/test_chaos.cpp certifies both halves).
//
// Header-only and free of engine dependencies so mmir_testing can implement
// ShardChaos without linking mmir_engine.

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace mmir::obs {
class MetricsRegistry;
}  // namespace mmir::obs

namespace mmir {

/// One injected fault kind for a single shard attempt.
enum class ShardFault : std::uint8_t {
  kNone = 0,
  kDelay,    ///< the attempt stalls for ShardFaultAction::delay before scanning
  kFail,     ///< the attempt aborts before examining anything (transient)
  kCorrupt,  ///< the attempt's partial is garbage and must be discarded
};

/// The chaos verdict for one (shard, attempt) pair.
struct ShardFaultAction {
  ShardFault kind = ShardFault::kNone;
  std::chrono::nanoseconds delay{0};  ///< meaningful for kDelay only
};

/// Deterministic per-shard fault source.  on_attempt() is called once per
/// execution attempt (hedge legs draw attempt ids offset by
/// kHedgeAttemptBase, so the duplicate sees an independent schedule) and
/// must be safe to call concurrently from pool workers.  Implementations
/// must derive the verdict purely from (their seed, shard, attempt).
class ShardChaos {
 public:
  virtual ~ShardChaos() = default;
  [[nodiscard]] virtual ShardFaultAction on_attempt(std::size_t shard,
                                                    int attempt) noexcept = 0;
};

/// Attempt-id offset of hedge legs: primary attempts are numbered
/// [0, max_attempts), the hedge duplicate draws [kHedgeAttemptBase, ...), so
/// a ShardChaos can target (or spare) either leg deterministically.
inline constexpr int kHedgeAttemptBase = 1000;

/// Per-shard fault envelope.  The zero-initialized default is inert: one
/// attempt, no sub-deadline, no hedging — the executors then take the plain
/// scatter-gather path unchanged.
struct ShardFaultPolicy {
  /// Wall-clock budget of ONE attempt at one shard; 0 = no sub-deadline.
  /// A tripped sub-deadline is retried while attempts remain, else the
  /// partial is kept as kDegraded with a widened missed bound.
  std::chrono::nanoseconds shard_timeout{0};
  /// Total attempts per shard leg (>= 1), shared by transient-failure
  /// retries and sub-deadline retries.
  int max_attempts = 1;
  /// Capped-backoff delays between attempts; jittered per (seed, shard,
  /// leg) so concurrent shard retries do not synchronize.
  std::chrono::microseconds retry_initial_backoff{50};
  std::chrono::microseconds retry_max_backoff{2000};
  std::uint64_t jitter_seed = 0x73686172642d6a69ULL;
  /// Hedged execution: once a shard's primary leg has run for hedge_delay
  /// without finishing cleanly, a speculative duplicate is launched; the
  /// first clean result wins and cancels the other leg.  Requires pool
  /// workers (a zero-worker pool runs shards inline, where a duplicate can
  /// never overlap the original and is pure overhead).
  bool hedge = false;
  std::chrono::nanoseconds hedge_delay{0};
};

/// Counters of one sharded execution's fault-domain events, returned on
/// ShardedTopK and mirrored into the metrics registry (engine_shard_*).
struct ShardFaultStats {
  std::uint64_t attempts = 0;         ///< scan attempts started (all legs)
  std::uint64_t retries = 0;          ///< attempts after the first of a leg
  std::uint64_t timeouts = 0;         ///< per-shard sub-deadlines tripped
  std::uint64_t faults_injected = 0;  ///< chaos actions != kNone observed
  std::uint64_t hedges_launched = 0;  ///< speculative duplicate legs started
  std::uint64_t hedges_won = 0;       ///< gathers that used the hedge leg
  std::uint64_t bounds_widened = 0;   ///< shards kept with a widened bound
  std::uint64_t failed_shards = 0;    ///< shards that contributed nothing
  std::uint64_t degraded_shards = 0;  ///< shards fault-degraded (incl. failed)

  [[nodiscard]] bool any_fault() const noexcept {
    return timeouts > 0 || faults_injected > 0 || failed_shards > 0 || bounds_widened > 0;
  }
};

/// Options threaded into the sharded raster executors.  Null or inactive
/// options select the original scatter-gather path byte-for-byte.
struct ShardExecOptions {
  ShardFaultPolicy policy;
  ShardChaos* chaos = nullptr;                 ///< borrowed; may be null
  obs::MetricsRegistry* metrics = nullptr;     ///< engine_shard_* counters; may be null

  /// Whether any fault-domain machinery is requested at all.
  [[nodiscard]] bool active() const noexcept {
    return chaos != nullptr || policy.shard_timeout.count() > 0 || policy.max_attempts > 1 ||
           policy.hedge;
  }
};

}  // namespace mmir
