#include "engine/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <utility>

#include "engine/batch_exec.hpp"
#include "obs/stats_server.hpp"
#include "sproc/brute.hpp"
#include "sproc/fast_sproc.hpp"
#include "sproc/sproc.hpp"

namespace mmir {

namespace {

constexpr double kPosInf = std::numeric_limits<double>::infinity();

// A shed job examined nothing, so its empty result carries the loosest sound
// missed bound for its score domain.
void mark_shed(RasterTopK& result) {
  result.status = ResultStatus::kShed;
  result.missed_bound = kPosInf;
}
void mark_shed(ShardedTopK& result) {
  result.merged.status = ResultStatus::kShed;
  result.merged.missed_bound = kPosInf;
}
void mark_shed(OnionTopK& result) {
  result.status = ResultStatus::kShed;
  result.missed_bound = kPosInf;
}
void mark_shed(ShardScanResult& result) {
  result.partial.result.status = ResultStatus::kShed;
  result.partial.result.missed_bound = kPosInf;
}
void mark_shed(CompositeTopK& result) {
  result.status = ResultStatus::kShed;
  result.missed_bound = 1.0;  // fuzzy degrees live in [0, 1]
}

}  // namespace

/// A forming shared-scan batch of raster jobs against one archive.  Lives in
/// open_raster_batches_ from the first member's admission until the flush
/// task drains it; `closed` stops further joins (fan-in reached, window
/// expired, or engine stopping).
struct QueryEngine::RasterBatchGroup {
  struct Member {
    RasterJob job;
    std::shared_ptr<std::promise<RasterOutcome>> promise;
    std::chrono::steady_clock::time_point submitted_at;
  };
  const TiledArchive* archive = nullptr;
  std::chrono::steady_clock::time_point deadline;
  bool closed = false;
  std::vector<Member> members;
};

/// Shard-scan twin of RasterBatchGroup, keyed by the sharded archive: a
/// shard server submitting many ShardScanJobs against the same fleet member
/// gets shared scans for free through the engine config it already passes.
struct QueryEngine::ShardScanBatchGroup {
  struct Member {
    ShardScanJob job;
    std::shared_ptr<std::promise<ShardScanOutcome>> promise;
    std::chrono::steady_clock::time_point submitted_at;
  };
  const ShardedArchive* sharded = nullptr;
  std::chrono::steady_clock::time_point deadline;
  bool closed = false;
  std::vector<Member> members;
};

QueryEngine::QueryEngine(EngineConfig config) : config_(config) {
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *config_.metrics;
    jobs_submitted_metric_ = reg.counter("engine_jobs_submitted_total");
    jobs_completed_metric_ = reg.counter("engine_jobs_completed_total");
    jobs_shed_metric_ = reg.counter("engine_jobs_shed_total");
    jobs_failed_metric_ = reg.counter("engine_jobs_failed_total");
    queue_depth_gauge_ = reg.gauge("engine_queue_depth");
    active_gauge_ = reg.gauge("engine_active_queries");
    queue_wait_hist_ = reg.histogram("engine_queue_wait_ns");
    exec_time_hist_ = reg.histogram("engine_exec_time_ns");
    result_cache_hit_ppm_gauge_ = reg.gauge("engine_result_cache_hit_rate_ppm");
    result_cache_entries_gauge_ = reg.gauge("engine_result_cache_entries");
    tile_cache_hit_ppm_gauge_ = reg.gauge("engine_tile_cache_hit_rate_ppm");
    tile_cache_entries_gauge_ = reg.gauge("engine_tile_cache_entries");
    batch_batches_metric_ = reg.counter("engine_batch_batches_total");
    batch_members_metric_ = reg.counter("engine_batch_members_total");
    batch_fanin_hist_ = reg.histogram("engine_batch_fanin");
  }
  exec_pool_ = std::make_unique<ThreadPool>(config_.intra_query_threads);
  if (config_.result_cache_entries > 0) {
    result_cache_ =
        std::make_unique<ResultCache>(config_.result_cache_entries, config_.cache_shards);
  }
  if (config_.tile_cache_entries > 0) {
    tile_cache_ = std::make_unique<TileCache>(config_.tile_cache_entries, config_.cache_shards);
  }
  paused_ = config_.start_paused;
  const std::size_t dispatchers = std::max<std::size_t>(1, config_.dispatchers);
  dispatchers_.reserve(dispatchers);
  for (std::size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
  if (config_.stats_port >= 0) {
    obs::StatsSources sources;
    sources.metrics = config_.metrics;
    sources.tracer = config_.tracer;
    // Safe to capture `this`: the destructor stops the server before any
    // engine member is torn down.
    sources.health = [this] {
      const EngineHealth h = health();
      obs::HealthReport report;
      report.ok = !h.degraded;
      report.lines.reserve(h.layouts.size());
      for (const ShardLayoutHealth& layout : h.layouts) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "layout=0x%llx shards=%zu executions=%llu timeouts=%llu hedges=%llu "
                      "failed_shards=%llu",
                      static_cast<unsigned long long>(layout.layout_tag), layout.shard_count,
                      static_cast<unsigned long long>(layout.executions),
                      static_cast<unsigned long long>(layout.timeouts),
                      static_cast<unsigned long long>(layout.hedges),
                      static_cast<unsigned long long>(layout.failed_shards));
        report.lines.emplace_back(line);
      }
      return report;
    };
    stats_server_ = std::make_unique<obs::StatsServer>(sources);
    stats_server_->start(static_cast<std::uint16_t>(config_.stats_port));
  }
}

QueryEngine::~QueryEngine() {
  stats_server_.reset();  // stop serving before the sources drain away
  // Wake any flush task parked on its batch window so it executes (or sheds)
  // before the dispatchers join.  The empty critical section orders the store
  // against a waiter that just evaluated its predicate.
  batch_stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
  }
  batch_cv_.notify_all();
  std::vector<QueuedTask> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    for (auto& level : queues_) {
      for (QueuedTask& task : level) leftovers.push_back(std::move(task));
      level.clear();
    }
    queued_ = 0;
  }
  queue_cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  // Fulfil the futures of jobs that never ran.
  for (QueuedTask& task : leftovers) task.run(true);
  drain_cv_.notify_all();
}

void QueryEngine::pause() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  paused_ = true;
}

void QueryEngine::resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void QueryEngine::drain() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drain_cv_.wait(lock, [&] { return queued_ == 0 && active_ == 0; });
}

EngineStats QueryEngine::stats() const {
  EngineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.queue_depth = queued_;
    s.active = active_;
  }
  return s;
}

CacheStats QueryEngine::result_cache_stats() const {
  return result_cache_ ? result_cache_->stats() : CacheStats{};
}

CacheStats QueryEngine::tile_cache_stats() const {
  return tile_cache_ ? tile_cache_->stats() : CacheStats{};
}

void QueryEngine::record_shard_health(std::uint64_t layout_tag, const ShardFaultStats& stats) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_window_.size() >= kHealthWindow) health_window_.pop_front();
  health_window_.push_back(
      {layout_tag, stats.timeouts, stats.hedges_launched, stats.failed_shards});
}

EngineHealth QueryEngine::health() const {
  EngineHealth out;
  std::lock_guard<std::mutex> lock(health_mutex_);
  for (const ShardHealthEvent& event : health_window_) {
    auto it = std::find_if(out.layouts.begin(), out.layouts.end(), [&](const auto& l) {
      return l.layout_tag == event.layout_tag;
    });
    if (it == out.layouts.end()) {
      ShardLayoutHealth layout;
      layout.layout_tag = event.layout_tag;
      // layout_tag is ((policy + 1) << 24) | shard_count (archive/sharded.hpp).
      layout.shard_count = static_cast<std::size_t>(event.layout_tag & 0xFFFFFFu);
      it = out.layouts.insert(out.layouts.end(), layout);
    }
    ++it->executions;
    it->timeouts += event.timeouts;
    it->hedges += event.hedges;
    it->failed_shards += event.failed_shards;
    if (event.timeouts > 0 || event.failed_shards > 0) out.degraded = true;
  }
  std::sort(out.layouts.begin(), out.layouts.end(),
            [](const auto& a, const auto& b) { return a.layout_tag < b.layout_tag; });
  return out;
}

int QueryEngine::stats_port() const noexcept {
  return stats_server_ != nullptr && stats_server_->running() ? stats_server_->port() : -1;
}

void QueryEngine::refresh_cache_gauges() {
  // ppm (parts per million) keeps a ratio on the integer gauge surface.
  constexpr double kPpm = 1e6;
  if (result_cache_ != nullptr) {
    const CacheStats s = result_cache_->stats();
    result_cache_hit_ppm_gauge_.set(static_cast<std::int64_t>(s.hit_rate() * kPpm));
    result_cache_entries_gauge_.set(static_cast<std::int64_t>(result_cache_->size()));
  }
  if (tile_cache_ != nullptr) {
    const CacheStats s = tile_cache_->stats();
    tile_cache_hit_ppm_gauge_.set(static_cast<std::int64_t>(s.hit_rate() * kPpm));
    tile_cache_entries_gauge_.set(static_cast<std::int64_t>(tile_cache_->size()));
  }
}

void QueryEngine::configure_context(QueryContext& ctx, const JobLimits& limits,
                                    std::chrono::steady_clock::time_point submitted) const {
  ctx.with_op_budget(limits.op_budget);
  if (limits.timeout.count() > 0) ctx.with_deadline(submitted + limits.timeout);
  if (limits.cancel != nullptr) ctx.with_cancel_flag(limits.cancel);
}

void QueryEngine::dispatcher_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || (!paused_ && queued_ > 0); });
      if (stopping_) return;
      for (auto& level : queues_) {
        if (!level.empty()) {
          task = std::move(level.front());
          level.pop_front();
          break;
        }
      }
      --queued_;
      ++active_;
      queue_depth_gauge_.set(static_cast<std::int64_t>(queued_));
      active_gauge_.set(static_cast<std::int64_t>(active_));
    }
    task.run(false);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --active_;
      active_gauge_.set(static_cast<std::int64_t>(active_));
    }
    drain_cv_.notify_all();
  }
}

template <typename Outcome, typename Execute>
std::future<Outcome> QueryEngine::enqueue(const char* kind, const JobLimits& limits,
                                          Execute execute) {
  auto promise = std::make_shared<std::promise<Outcome>>();
  std::future<Outcome> future = promise->get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  jobs_submitted_metric_.add();
  const auto submitted_at = std::chrono::steady_clock::now();

  QueuedTask task;
  task.run = [this, promise, execute = std::move(execute), kind, limits,
              submitted_at](bool shed) {
    Outcome out;
    if (shed) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      jobs_shed_metric_.add();
      mark_shed(out.result);
      promise->set_value(std::move(out));
      return;
    }
    out.dispatch_order = dispatch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const auto started = std::chrono::steady_clock::now();
    out.queue_wait =
        std::chrono::duration_cast<std::chrono::nanoseconds>(started - submitted_at);
    queue_wait_hist_.observe_duration(out.queue_wait);
    try {
      // One trace per dispatched query: the root span covers execution, with
      // queue wait recorded as an annotation (the span clock starts at
      // dispatch, not submission).  Executors hang stage spans off the root
      // via ctx.span(); deeper layers (archive/io retries) reach it through
      // the SpanScope's thread-local hook.
      std::shared_ptr<obs::Trace> trace;
      obs::Span root;
      if (config_.tracer != nullptr) {
        trace = config_.tracer->start_trace(kind);
        root = obs::Span(trace.get(), "query");
        root.annotate("query_id", static_cast<double>(trace->id()));
        root.annotate("queue_wait_ns", static_cast<double>(out.queue_wait.count()));
        root.annotate("priority", static_cast<double>(limits.priority));
        root.annotate("dispatch_order", static_cast<double>(out.dispatch_order));
        if (limits.op_budget != std::numeric_limits<std::uint64_t>::max()) {
          root.annotate("op_budget", static_cast<double>(limits.op_budget));
        }
        if (limits.timeout.count() > 0) {
          root.annotate("timeout_ns", static_cast<double>(limits.timeout.count()));
        }
      }
      obs::SpanScope scope(root);
      QueryContext ctx;
      configure_context(ctx, limits, submitted_at);
      if (root.active()) ctx.with_span(&root);
      execute(ctx, out);
      out.exec_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started);
      exec_time_hist_.observe_duration(out.exec_time);
      if (config_.metrics != nullptr) {
        publish(out.meter, *config_.metrics);
        refresh_cache_gauges();
      }
      if (root.active()) {
        root.annotate("exec_ns", static_cast<double>(out.exec_time.count()));
        root.annotate("ops_spent", static_cast<double>(out.meter.ops()));
        root.annotate("cache_hits", static_cast<double>(out.meter.cache_hits()));
        root.annotate("cache_misses", static_cast<double>(out.meter.cache_misses()));
        if (out.cache_hit) root.note("result_cache", "hit");
        root.finish();
      }
      if (trace != nullptr) {
        out.trace = trace;
        config_.tracer->finish(std::move(trace));
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      jobs_completed_metric_.add();
      promise->set_value(std::move(out));
    } catch (...) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      jobs_failed_metric_.add();
      promise->set_exception(std::current_exception());
    }
  };

  bool admit = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!stopping_ && queued_ < config_.queue_capacity) {
      queues_[static_cast<std::size_t>(limits.priority)].push_back(std::move(task));
      ++queued_;
      queue_depth_gauge_.set(static_cast<std::int64_t>(queued_));
      admit = true;
    }
  }
  if (admit) {
    queue_cv_.notify_one();
  } else {
    task.run(true);  // admission control: shed without dispatching
  }
  return future;
}

bool QueryEngine::cached_tile_bounds(const TiledArchive& archive, std::uint64_t archive_id,
                                     const ShardedArchive* sharded,
                                     const RasterModel& screen_model, std::uint64_t model_fp,
                                     exec::TileBounds& tb, CostMeter& meter) {
  if (tile_cache_ == nullptr || archive_id == 0 || model_fp == 0) return false;
  const auto tiles = archive.tiles();
  tb.bounds.resize(tiles.size());
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const std::uint32_t shard =
        sharded != nullptr ? static_cast<std::uint32_t>(sharded->owner_of_tile(t)) + 1U : 0U;
    const TileCacheKey key{archive_id, model_fp, static_cast<std::uint64_t>(t), shard};
    if (auto cached = tile_cache_->get(key)) {
      tb.bounds[t] = *cached;
      ++hits;
      continue;
    }
    tb.bounds[t] = screen_model.bound(tiles[t].band_range);
    meter.add_ops(screen_model.ops_per_evaluation());
    tile_cache_->put(key, tb.bounds[t]);
    ++misses;
  }
  meter.add_cache_hits(hits);
  meter.add_cache_misses(misses);
  // Sharded executors derive their own per-shard visit order from the raw
  // bounds; the global best-bound-first order only serves the monolithic path.
  if (sharded == nullptr) tb.order = exec::order_by_bound(tb.bounds);
  return true;
}

std::future<RasterOutcome> QueryEngine::submit(RasterJob job) {
  MMIR_EXPECTS(job.archive != nullptr);
  MMIR_EXPECTS(job.k > 0);
  const bool model_leg =
      job.mode == RasterJob::Mode::kProgressiveModel || job.mode == RasterJob::Mode::kCombined;
  if (model_leg) {
    MMIR_EXPECTS(job.progressive != nullptr);
  } else {
    MMIR_EXPECTS(job.model != nullptr);
  }
  if (config_.batch_max_fanin > 1) return submit_batched(std::move(job));

  return enqueue<RasterOutcome>(
      "raster", job.limits, [this, job](QueryContext& ctx, RasterOutcome& out) {
        const bool model_leg = job.mode == RasterJob::Mode::kProgressiveModel ||
                               job.mode == RasterJob::Mode::kCombined;
        std::uint64_t fp = job.model_fingerprint;
        if (fp == 0) {
          if (model_leg) {
            fp = model_fingerprint(*job.progressive);
          } else if (const auto* linear = dynamic_cast<const LinearRasterModel*>(job.model)) {
            fp = model_fingerprint(linear->linear());
          }
        }
        const bool cacheable = job.archive_id != 0 && fp != 0 && result_cache_ != nullptr;
        const QueryCacheKey key{job.archive_id, fp, static_cast<std::uint32_t>(job.k),
                                static_cast<std::uint32_t>(job.mode)};
        if (cacheable) {
          if (auto hit = result_cache_->get(key)) {
            out.result = **hit;
            out.cache_hit = true;
            out.meter.add_cache_hits();
            return;
          }
          out.meter.add_cache_misses();
        }

        exec::TileBounds tb;
        const exec::TileBounds* precomputed = nullptr;
        switch (job.mode) {
          case RasterJob::Mode::kFullScan:
            out.result = parallel_full_scan_top_k(*job.archive, *job.model, job.k, ctx,
                                                  out.meter, *exec_pool_);
            break;
          case RasterJob::Mode::kProgressiveModel:
            out.result = parallel_progressive_model_top_k(*job.archive, *job.progressive, job.k,
                                                          ctx, out.meter, *exec_pool_);
            break;
          case RasterJob::Mode::kTileScreened:
            if (cached_tile_bounds(*job.archive, job.archive_id, nullptr, *job.model, fp, tb,
                                   out.meter)) {
              precomputed = &tb;
            }
            out.result = parallel_tile_screened_top_k(*job.archive, *job.model, job.k, ctx,
                                                      out.meter, *exec_pool_, precomputed);
            break;
          case RasterJob::Mode::kCombined: {
            const LinearRasterModel screen(job.progressive->model());
            if (cached_tile_bounds(*job.archive, job.archive_id, nullptr, screen, fp, tb,
                                   out.meter)) {
              precomputed = &tb;
            }
            out.result = parallel_progressive_combined_top_k(
                *job.archive, *job.progressive, job.k, ctx, out.meter, *exec_pool_, precomputed);
            break;
          }
        }

        // Only answers that do not depend on this query's budget/deadline
        // are admissible: a truncated result would poison future lookups.
        if (cacheable && !is_truncated(out.result.status)) {
          result_cache_->put(key, std::make_shared<const RasterTopK>(out.result));
        }
      });
}

std::future<ShardedRasterOutcome> QueryEngine::submit(ShardedRasterJob job) {
  MMIR_EXPECTS(job.sharded != nullptr);
  MMIR_EXPECTS(job.k > 0);
  const bool model_leg =
      job.mode == RasterJob::Mode::kProgressiveModel || job.mode == RasterJob::Mode::kCombined;
  if (model_leg) {
    MMIR_EXPECTS(job.progressive != nullptr);
  } else {
    MMIR_EXPECTS(job.model != nullptr);
  }

  return enqueue<ShardedRasterOutcome>(
      "sharded_raster", job.limits, [this, job](QueryContext& ctx, ShardedRasterOutcome& out) {
        const ShardedArchive& sharded = *job.sharded;
        const TiledArchive& archive = sharded.archive();
        const bool model_leg = job.mode == RasterJob::Mode::kProgressiveModel ||
                               job.mode == RasterJob::Mode::kCombined;
        std::uint64_t fp = job.model_fingerprint;
        if (fp == 0) {
          if (model_leg) {
            fp = model_fingerprint(*job.progressive);
          } else if (const auto* linear = dynamic_cast<const LinearRasterModel*>(job.model)) {
            fp = model_fingerprint(linear->linear());
          }
        }
        const bool cacheable = job.archive_id != 0 && fp != 0 && result_cache_ != nullptr;
        const QueryCacheKey key{job.archive_id, fp, static_cast<std::uint32_t>(job.k),
                                static_cast<std::uint32_t>(job.mode), sharded.layout_tag()};
        if (cacheable) {
          if (auto hit = result_cache_->get(key)) {
            out.result.merged = **hit;
            out.cache_hit = true;
            out.meter.add_cache_hits();
            return;
          }
          out.meter.add_cache_misses();
        }

        // The engine-wide fault envelope: per-shard sub-deadlines, retries,
        // hedging, chaos injection.  Inactive options pass through to the
        // plain scatter-gather path unchanged.
        ShardExecOptions shard_options;
        shard_options.policy = config_.shard_fault_policy;
        shard_options.chaos = config_.shard_chaos;
        shard_options.metrics = config_.metrics;
        const ShardExecOptions* options = shard_options.active() ? &shard_options : nullptr;

        exec::TileBounds tb;
        const exec::TileBounds* precomputed = nullptr;
        switch (job.mode) {
          case RasterJob::Mode::kFullScan:
            out.result = sharded_full_scan_top_k(sharded, *job.model, job.k, ctx, out.meter,
                                                 *exec_pool_, options);
            break;
          case RasterJob::Mode::kProgressiveModel:
            out.result = sharded_progressive_model_top_k(sharded, *job.progressive, job.k, ctx,
                                                         out.meter, *exec_pool_, options);
            break;
          case RasterJob::Mode::kTileScreened:
            if (cached_tile_bounds(archive, job.archive_id, &sharded, *job.model, fp, tb,
                                   out.meter)) {
              precomputed = &tb;
            }
            out.result = sharded_tile_screened_top_k(sharded, *job.model, job.k, ctx, out.meter,
                                                     *exec_pool_, precomputed, options);
            break;
          case RasterJob::Mode::kCombined: {
            const LinearRasterModel screen(job.progressive->model());
            if (cached_tile_bounds(archive, job.archive_id, &sharded, screen, fp, tb,
                                   out.meter)) {
              precomputed = &tb;
            }
            out.result = sharded_progressive_combined_top_k(sharded, *job.progressive, job.k,
                                                            ctx, out.meter, *exec_pool_,
                                                            precomputed, options);
            break;
          }
        }
        if (options != nullptr) {
          record_shard_health(sharded.layout_tag(), out.result.fault_stats);
        }

        // A fault-widened (degraded) merge is also inadmissible: the widened
        // bound is an artifact of this execution's faults, not of the data.
        if (cacheable && !is_truncated(out.result.merged.status) &&
            !out.result.fault_stats.any_fault()) {
          result_cache_->put(key, std::make_shared<const RasterTopK>(out.result.merged));
        }
      });
}

std::future<ShardScanOutcome> QueryEngine::submit(ShardScanJob job) {
  MMIR_EXPECTS(job.sharded != nullptr);
  MMIR_EXPECTS(job.k > 0);
  MMIR_EXPECTS(job.shard_id < job.sharded->shard_count());
  const bool model_leg =
      job.mode == ShardScanMode::kProgressiveModel || job.mode == ShardScanMode::kCombined;
  if (model_leg) {
    MMIR_EXPECTS(job.progressive != nullptr);
  } else {
    MMIR_EXPECTS(job.model != nullptr);
  }
  if (config_.batch_max_fanin > 1) return submit_batched(std::move(job));
  return enqueue<ShardScanOutcome>(
      "shard_scan", job.limits, [job](QueryContext& ctx, ShardScanOutcome& out) {
        out.result = scan_shard_partial(*job.sharded, job.shard_id, job.mode, job.model,
                                        job.progressive, job.k, ctx, out.meter);
      });
}

std::future<RasterOutcome> QueryEngine::submit_batched(RasterJob job) {
  auto promise = std::make_shared<std::promise<RasterOutcome>>();
  std::future<RasterOutcome> future = promise->get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  jobs_submitted_metric_.add();
  const auto submitted_at = std::chrono::steady_clock::now();
  const TiledArchive* archive = job.archive;

  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    auto it = open_raster_batches_.find(archive);
    if (it != open_raster_batches_.end()) {
      RasterBatchGroup& group = *it->second;
      group.members.push_back({std::move(job), std::move(promise), submitted_at});
      if (group.members.size() >= config_.batch_max_fanin) {
        group.closed = true;
        open_raster_batches_.erase(it);
        batch_cv_.notify_all();
      }
      return future;
    }
  }

  // First member on this archive: open a group and enqueue ONE flush task for
  // the whole batch — joiners ride along without consuming queue slots.
  auto group = std::make_shared<RasterBatchGroup>();
  group->archive = archive;
  group->deadline = submitted_at + config_.batch_window;
  const Priority priority = job.limits.priority;
  group->members.push_back({std::move(job), std::move(promise), submitted_at});
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    open_raster_batches_.emplace(archive, group);
  }

  QueuedTask task;
  task.run = [this, group](bool shed) { run_raster_batch(group, shed); };
  bool admit = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!stopping_ && queued_ < config_.queue_capacity) {
      queues_[static_cast<std::size_t>(priority)].push_back(std::move(task));
      ++queued_;
      queue_depth_gauge_.set(static_cast<std::int64_t>(queued_));
      admit = true;
    }
  }
  if (admit) {
    queue_cv_.notify_one();
  } else {
    task.run(true);  // admission control: shed the whole group
  }
  return future;
}

std::future<ShardScanOutcome> QueryEngine::submit_batched(ShardScanJob job) {
  auto promise = std::make_shared<std::promise<ShardScanOutcome>>();
  std::future<ShardScanOutcome> future = promise->get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  jobs_submitted_metric_.add();
  const auto submitted_at = std::chrono::steady_clock::now();
  const ShardedArchive* sharded = job.sharded;

  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    auto it = open_shard_batches_.find(sharded);
    if (it != open_shard_batches_.end()) {
      ShardScanBatchGroup& group = *it->second;
      group.members.push_back({std::move(job), std::move(promise), submitted_at});
      if (group.members.size() >= config_.batch_max_fanin) {
        group.closed = true;
        open_shard_batches_.erase(it);
        batch_cv_.notify_all();
      }
      return future;
    }
  }

  auto group = std::make_shared<ShardScanBatchGroup>();
  group->sharded = sharded;
  group->deadline = submitted_at + config_.batch_window;
  const Priority priority = job.limits.priority;
  group->members.push_back({std::move(job), std::move(promise), submitted_at});
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    open_shard_batches_.emplace(sharded, group);
  }

  QueuedTask task;
  task.run = [this, group](bool shed) { run_shard_scan_batch(group, shed); };
  bool admit = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!stopping_ && queued_ < config_.queue_capacity) {
      queues_[static_cast<std::size_t>(priority)].push_back(std::move(task));
      ++queued_;
      queue_depth_gauge_.set(static_cast<std::int64_t>(queued_));
      admit = true;
    }
  }
  if (admit) {
    queue_cv_.notify_one();
  } else {
    task.run(true);
  }
  return future;
}

void QueryEngine::run_raster_batch(const std::shared_ptr<RasterBatchGroup>& group, bool shed) {
  std::vector<RasterBatchGroup::Member> members;
  {
    std::unique_lock<std::mutex> lock(batch_mutex_);
    if (!shed && !group->closed && config_.batch_window.count() > 0) {
      batch_cv_.wait_until(lock, group->deadline, [&] {
        return group->closed || batch_stop_.load(std::memory_order_relaxed);
      });
    }
    group->closed = true;
    auto it = open_raster_batches_.find(group->archive);
    if (it != open_raster_batches_.end() && it->second == group) open_raster_batches_.erase(it);
    members = std::move(group->members);
  }
  if (members.empty()) return;
  if (shed) {
    for (auto& member : members) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      jobs_shed_metric_.add();
      RasterOutcome out;
      mark_shed(out.result);
      member.promise->set_value(std::move(out));
    }
    return;
  }

  const auto started = std::chrono::steady_clock::now();
  batch_batches_metric_.add();
  batch_members_metric_.add(members.size());
  batch_fanin_hist_.observe(members.size());
  const TiledArchive& archive = *group->archive;

  // One trace for the whole batch: the root "batch" span carries the fan-in,
  // each member hangs its own child span (with the solo span vocabulary) off
  // it, and every member outcome shares the trace.
  std::shared_ptr<obs::Trace> trace;
  obs::Span root;
  if (config_.tracer != nullptr) {
    trace = config_.tracer->start_trace("batch");
    root = obs::Span(trace.get(), "batch");
    root.annotate("query_id", static_cast<double>(trace->id()));
    root.annotate("fan_in", static_cast<double>(members.size()));
  }
  obs::SpanScope scope(root);

  // QueryContext is pinned (non-movable); deque never relocates elements, so
  // the pointers handed to batch_scan stay valid as members are prepared.
  struct Prepared {
    RasterOutcome out;
    QueryContext ctx;
    obs::Span span;
    exec::TileBounds tb;
    std::unique_ptr<const LinearRasterModel> screen;  // kCombined screening model
    std::uint64_t fp = 0;
    bool cacheable = false;
    QueryCacheKey key{};
    bool skip = false;  // result-cache hit: not part of the scan
  };
  std::deque<Prepared> prepared;
  std::vector<BatchMemberSpec> specs;
  std::vector<std::size_t> spec_member;  // spec index -> member index

  try {
    for (std::size_t i = 0; i < members.size(); ++i) {
      const RasterJob& job = members[i].job;
      Prepared& p = prepared.emplace_back();
      p.out.dispatch_order = dispatch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      p.out.queue_wait = std::chrono::duration_cast<std::chrono::nanoseconds>(
          started - members[i].submitted_at);
      queue_wait_hist_.observe_duration(p.out.queue_wait);
      if (root.active()) {
        p.span = obs::Span::child_of(&root, "member");
        p.span.annotate("member", static_cast<double>(i));
        p.span.annotate("queue_wait_ns", static_cast<double>(p.out.queue_wait.count()));
        p.span.annotate("priority", static_cast<double>(job.limits.priority));
        p.span.annotate("dispatch_order", static_cast<double>(p.out.dispatch_order));
        if (job.limits.op_budget != std::numeric_limits<std::uint64_t>::max()) {
          p.span.annotate("op_budget", static_cast<double>(job.limits.op_budget));
        }
        if (job.limits.timeout.count() > 0) {
          p.span.annotate("timeout_ns", static_cast<double>(job.limits.timeout.count()));
        }
      }
      configure_context(p.ctx, job.limits, members[i].submitted_at);
      if (p.span.active()) p.ctx.with_span(&p.span);

      const bool model_leg = job.mode == RasterJob::Mode::kProgressiveModel ||
                             job.mode == RasterJob::Mode::kCombined;
      p.fp = job.model_fingerprint;
      if (p.fp == 0) {
        if (model_leg) {
          p.fp = model_fingerprint(*job.progressive);
        } else if (const auto* linear = dynamic_cast<const LinearRasterModel*>(job.model)) {
          p.fp = model_fingerprint(linear->linear());
        }
      }
      p.cacheable = job.archive_id != 0 && p.fp != 0 && result_cache_ != nullptr;
      p.key = QueryCacheKey{job.archive_id, p.fp, static_cast<std::uint32_t>(job.k),
                            static_cast<std::uint32_t>(job.mode)};
      if (p.cacheable) {
        if (auto hit = result_cache_->get(p.key)) {
          p.out.result = **hit;
          p.out.cache_hit = true;
          p.out.meter.add_cache_hits();
          p.skip = true;
          continue;
        }
        p.out.meter.add_cache_misses();
      }

      BatchMemberSpec spec;
      spec.mode = static_cast<BatchScanMode>(job.mode);
      spec.model = job.model;
      spec.progressive = job.progressive;
      spec.k = job.k;
      spec.ctx = &p.ctx;
      spec.meter = &p.out.meter;
      if (p.span.active()) spec.span = &p.span;
      if (job.mode == RasterJob::Mode::kTileScreened) {
        if (cached_tile_bounds(archive, job.archive_id, nullptr, *job.model, p.fp, p.tb,
                               p.out.meter)) {
          spec.precomputed_bounds = &p.tb;
        }
      } else if (job.mode == RasterJob::Mode::kCombined) {
        p.screen = std::make_unique<const LinearRasterModel>(job.progressive->model());
        if (cached_tile_bounds(archive, job.archive_id, nullptr, *p.screen, p.fp, p.tb,
                               p.out.meter)) {
          spec.precomputed_bounds = &p.tb;
        }
      }
      specs.push_back(spec);
      spec_member.push_back(i);
    }

    std::vector<BatchMemberResult> results =
        batch_scan(archive, std::span<const BatchMemberSpec>(specs));
    for (std::size_t s = 0; s < specs.size(); ++s) {
      Prepared& p = prepared[spec_member[s]];
      p.out.result = std::move(results[s].result);
      // Same admissibility rule as solo: budget/deadline-truncated answers
      // would poison future lookups.
      if (p.cacheable && !is_truncated(p.out.result.status)) {
        result_cache_->put(p.key, std::make_shared<const RasterTopK>(p.out.result));
      }
    }

    const auto exec_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - started);
    for (Prepared& p : prepared) {
      p.out.exec_time = exec_time;
      exec_time_hist_.observe_duration(exec_time);
      if (config_.metrics != nullptr) publish(p.out.meter, *config_.metrics);
      if (p.span.active()) {
        p.span.annotate("exec_ns", static_cast<double>(exec_time.count()));
        p.span.annotate("ops_spent", static_cast<double>(p.out.meter.ops()));
        p.span.annotate("cache_hits", static_cast<double>(p.out.meter.cache_hits()));
        p.span.annotate("cache_misses", static_cast<double>(p.out.meter.cache_misses()));
        if (p.out.cache_hit) p.span.note("result_cache", "hit");
        p.span.finish();
      }
    }
    if (config_.metrics != nullptr) refresh_cache_gauges();
    if (root.active()) root.finish();
    if (trace != nullptr) {
      for (Prepared& p : prepared) p.out.trace = trace;
      config_.tracer->finish(std::move(trace));
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      jobs_completed_metric_.add();
      members[i].promise->set_value(std::move(prepared[i].out));
    }
  } catch (...) {
    for (auto& member : members) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      jobs_failed_metric_.add();
      member.promise->set_exception(std::current_exception());
    }
  }
}

void QueryEngine::run_shard_scan_batch(const std::shared_ptr<ShardScanBatchGroup>& group,
                                       bool shed) {
  std::vector<ShardScanBatchGroup::Member> members;
  {
    std::unique_lock<std::mutex> lock(batch_mutex_);
    if (!shed && !group->closed && config_.batch_window.count() > 0) {
      batch_cv_.wait_until(lock, group->deadline, [&] {
        return group->closed || batch_stop_.load(std::memory_order_relaxed);
      });
    }
    group->closed = true;
    auto it = open_shard_batches_.find(group->sharded);
    if (it != open_shard_batches_.end() && it->second == group) open_shard_batches_.erase(it);
    members = std::move(group->members);
  }
  if (members.empty()) return;
  if (shed) {
    for (auto& member : members) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      jobs_shed_metric_.add();
      ShardScanOutcome out;
      mark_shed(out.result);
      member.promise->set_value(std::move(out));
    }
    return;
  }

  const auto started = std::chrono::steady_clock::now();
  batch_batches_metric_.add();
  batch_members_metric_.add(members.size());
  batch_fanin_hist_.observe(members.size());
  const ShardedArchive& sharded = *group->sharded;
  const TiledArchive& archive = sharded.archive();

  std::shared_ptr<obs::Trace> trace;
  obs::Span root;
  if (config_.tracer != nullptr) {
    trace = config_.tracer->start_trace("batch");
    root = obs::Span(trace.get(), "batch");
    root.annotate("query_id", static_cast<double>(trace->id()));
    root.annotate("fan_in", static_cast<double>(members.size()));
  }
  obs::SpanScope scope(root);

  struct Prepared {
    ShardScanOutcome out;
    QueryContext ctx;
    obs::Span span;
  };
  std::deque<Prepared> prepared;
  std::vector<BatchMemberSpec> specs;

  try {
    for (std::size_t i = 0; i < members.size(); ++i) {
      const ShardScanJob& job = members[i].job;
      const ShardInfo& shard = sharded.shard(job.shard_id);
      Prepared& p = prepared.emplace_back();
      p.out.dispatch_order = dispatch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      p.out.queue_wait = std::chrono::duration_cast<std::chrono::nanoseconds>(
          started - members[i].submitted_at);
      queue_wait_hist_.observe_duration(p.out.queue_wait);
      if (root.active()) {
        p.span = obs::Span::child_of(&root, "shard_" + std::to_string(job.shard_id));
        p.span.annotate("member", static_cast<double>(i));
        p.span.annotate("shard", static_cast<double>(job.shard_id));
        p.span.annotate("queue_wait_ns", static_cast<double>(p.out.queue_wait.count()));
      }
      configure_context(p.ctx, job.limits, members[i].submitted_at);
      if (p.span.active()) p.ctx.with_span(&p.span);

      BatchMemberSpec spec;
      spec.mode = static_cast<BatchScanMode>(job.mode);
      spec.model = job.model;
      spec.progressive = job.progressive;
      spec.k = job.k;
      spec.ctx = &p.ctx;
      spec.meter = &p.out.meter;
      spec.tile_subset = &shard.tiles;
      spec.domain_ranges = &shard.band_ranges;
      spec.domain_bad_pixels = shard.bad_pixels;
      if (p.span.active()) spec.span = &p.span;
      specs.push_back(spec);
    }

    std::vector<BatchMemberResult> results =
        batch_scan(archive, std::span<const BatchMemberSpec>(specs));
    const auto exec_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - started);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const ShardScanJob& job = members[i].job;
      Prepared& p = prepared[i];
      BatchMemberResult& r = results[i];
      p.out.result.partial.shard_id = job.shard_id;
      p.out.result.partial.result = std::move(r.result);
      p.out.result.partial.pixels_visited = r.pixels_visited;
      p.out.result.partial.tiles_scanned = r.tiles_scanned;
      p.out.result.partial.tiles_pruned = r.tiles_pruned;
      p.out.result.scan_ops = r.scan_ops;
      const bool model_leg =
          job.mode == ShardScanMode::kProgressiveModel || job.mode == ShardScanMode::kCombined;
      p.out.result.model_terms =
          model_leg ? job.progressive->order().size() : job.model->ops_per_evaluation();
      p.out.exec_time = exec_time;
      exec_time_hist_.observe_duration(exec_time);
      if (config_.metrics != nullptr) publish(p.out.meter, *config_.metrics);
      if (p.span.active()) {
        p.span.annotate("exec_ns", static_cast<double>(exec_time.count()));
        p.span.annotate("ops_spent", static_cast<double>(p.out.meter.ops()));
        p.span.finish();
      }
    }
    if (config_.metrics != nullptr) refresh_cache_gauges();
    if (root.active()) root.finish();
    if (trace != nullptr) {
      for (Prepared& p : prepared) p.out.trace = trace;
      config_.tracer->finish(std::move(trace));
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      jobs_completed_metric_.add();
      members[i].promise->set_value(std::move(prepared[i].out));
    }
  } catch (...) {
    for (auto& member : members) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      jobs_failed_metric_.add();
      member.promise->set_exception(std::current_exception());
    }
  }
}

std::future<OnionOutcome> QueryEngine::submit(OnionJob job) {
  MMIR_EXPECTS(job.index != nullptr);
  MMIR_EXPECTS(job.k > 0);
  MMIR_EXPECTS(!job.weights.empty());
  return enqueue<OnionOutcome>(
      "onion", job.limits, [job = std::move(job)](QueryContext& ctx, OnionOutcome& out) {
        out.result = job.index->top_k(job.weights, job.k, ctx, out.meter);
      });
}

std::future<CompositeOutcome> QueryEngine::submit(CompositeJob job) {
  MMIR_EXPECTS(job.query != nullptr);
  MMIR_EXPECTS(job.k > 0);
  return enqueue<CompositeOutcome>(
      "composite", job.limits, [job](QueryContext& ctx, CompositeOutcome& out) {
        switch (job.processor) {
          case CompositeJob::Processor::kFastSproc:
            out.result = fast_sproc_top_k(*job.query, job.k, ctx, out.meter);
            break;
          case CompositeJob::Processor::kSproc:
            out.result = sproc_top_k(*job.query, job.k, ctx, out.meter);
            break;
          case CompositeJob::Processor::kBruteForce:
            out.result = brute_force_top_k(*job.query, job.k, ctx, out.meter);
            break;
        }
      });
}

}  // namespace mmir
