#pragma once
// Concurrent query scheduler: bounded admission, priorities, futures.
//
// The paper frames model-based retrieval as a *server-side archive service*;
// PR 1 gave each query a fault envelope (QueryContext), and this scheduler
// runs many such queries at once:
//
//   * submit() enqueues a job into a bounded three-level priority queue and
//     returns a std::future.  When the queue is at capacity the job is
//     *shed* instead: the future completes immediately with an empty result
//     flagged ResultStatus::kShed and the loosest sound missed bound —
//     back-pressure expressed in the same vocabulary executors already use
//     for truncation, so callers handle overload and budget expiry with one
//     code path.
//   * a fixed set of dispatcher threads drains the queue highest priority
//     first (FIFO within a level).  Each dispatcher builds the query's
//     QueryContext (budget, the deadline anchored at *submission* so queue
//     wait counts against it, caller cancel flag) and runs the executor.
//   * raster jobs execute tile-parallel on a shared intra-query ThreadPool
//     (size 0 = serial); results and per-tile screening bounds flow through
//     the sharded LRU caches (engine/cache.hpp).  Only Complete/Degraded
//     results are admitted to the result cache — a truncated answer is an
//     artifact of its budget, not of the data.
//
// Outcomes carry the executor result, the merged CostMeter (including cache
// hits/misses), queue-wait and execution wall times, and a dispatch sequence
// number — enough for callers to build p50/p99 latency and shed-rate
// dashboards (see bench/bench_engine.cpp).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/progressive_exec.hpp"
#include "engine/cache.hpp"
#include "engine/parallel_exec.hpp"
#include "engine/shard_exec.hpp"
#include "engine/thread_pool.hpp"
#include "index/onion.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sproc/query.hpp"

namespace mmir::obs {
class StatsServer;
}  // namespace mmir::obs

namespace mmir {

/// Scheduling priority; lower value drains first.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
inline constexpr std::size_t kPriorityLevels = 3;

struct EngineConfig {
  std::size_t dispatchers = 2;          ///< concurrent queries in flight
  std::size_t intra_query_threads = 0;  ///< tile-parallel pool size (0 = serial execution)
  std::size_t queue_capacity = 64;      ///< pending jobs before shedding
  std::size_t result_cache_entries = 256;  ///< whole-query results (0 disables)
  std::size_t tile_cache_entries = 4096;   ///< per-tile screening bounds (0 disables)
  std::size_t cache_shards = 8;
  /// Shared-scan batching (engine/batch_exec.hpp): compatible raster /
  /// shard-scan jobs targeting the same archive admitted while a batch is
  /// open execute as ONE shared tile scan — each tile decoded once, every
  /// member model evaluated against it, per-member attribution and fault
  /// envelopes intact, results byte-identical to solo runs.  1 (the
  /// default) disables batching entirely; N > 1 caps the fan-in at N.
  std::size_t batch_max_fanin = 1;
  /// Once a dispatcher picks up an open batch, how long it keeps waiting for
  /// batch-mates before flushing.  0 flushes immediately — batches then form
  /// only out of queue pressure (jobs that joined while the flush task
  /// waited behind the dispatchers, or during an explicit pause()).
  std::chrono::nanoseconds batch_window{0};
  bool start_paused = false;  ///< admit but do not dispatch until resume()
  /// Registry receiving engine counters, gauges, latency histograms and each
  /// completed query's published CostMeter; null disables metrics entirely
  /// (every handle stays inert — the no-op build for overhead comparisons).
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();
  /// Per-query trace sink; null (the default) disables tracing.
  obs::Tracer* tracer = nullptr;
  /// Port for the embedded operator stats server (obs/stats_server.hpp):
  /// -1 (the default) keeps the server off — no thread, no socket, zero
  /// overhead; 0 binds an ephemeral port (read it back via stats_port());
  /// >0 binds that port.  The server only listens on 127.0.0.1.
  int stats_port = -1;
  /// Per-shard fault envelope applied to every ShardedRasterJob
  /// (engine/fault_domain.hpp): sub-deadline, attempt budget, hedging.  The
  /// inert default keeps the plain scatter-gather path byte-for-byte.
  ShardFaultPolicy shard_fault_policy{};
  /// Deterministic chaos source injected into sharded executions (borrowed,
  /// must outlive the engine; null = no injection).  The test seam for the
  /// chaos battery — testing::ChaosPolicy is the canonical implementation.
  ShardChaos* shard_chaos = nullptr;
};

/// Shared fields of every job type.
struct JobLimits {
  Priority priority = Priority::kNormal;
  std::uint64_t op_budget = std::numeric_limits<std::uint64_t>::max();
  /// 0 = no deadline; otherwise the deadline is submission time + timeout,
  /// so time spent queued counts against it.
  std::chrono::nanoseconds timeout{0};
  const std::atomic<bool>* cancel = nullptr;  ///< caller-owned; must outlive the job
};

/// A raster top-K query over a tiled archive.
struct RasterJob {
  enum class Mode : std::uint32_t {
    kFullScan = 0,
    kProgressiveModel = 1,
    kTileScreened = 2,
    kCombined = 3,
  };

  Mode mode = Mode::kCombined;
  const TiledArchive* archive = nullptr;
  /// Required for kFullScan / kTileScreened.
  const RasterModel* model = nullptr;
  /// Required for kProgressiveModel / kCombined.
  const ProgressiveLinearModel* progressive = nullptr;
  std::size_t k = 10;
  JobLimits limits;
  /// Stable caller-assigned archive identity; 0 marks the job uncacheable.
  std::uint64_t archive_id = 0;
  /// Optional model fingerprint override; 0 = derive from the model when
  /// possible (progressive models and LinearRasterModel), else uncacheable.
  std::uint64_t model_fingerprint = 0;
};

/// A raster top-K query executed scatter-gather over a ShardedArchive.  The
/// same four modes as RasterJob; results equal the monolithic path modulo
/// exact ties, so the result cache qualifies the key with the shard layout.
struct ShardedRasterJob {
  RasterJob::Mode mode = RasterJob::Mode::kCombined;
  const ShardedArchive* sharded = nullptr;
  /// Required for kFullScan / kTileScreened.
  const RasterModel* model = nullptr;
  /// Required for kProgressiveModel / kCombined.
  const ProgressiveLinearModel* progressive = nullptr;
  std::size_t k = 10;
  JobLimits limits;
  /// Stable caller-assigned archive identity; 0 marks the job uncacheable.
  std::uint64_t archive_id = 0;
  /// Optional model fingerprint override; 0 = derive when possible.
  std::uint64_t model_fingerprint = 0;
};

/// One shard's slice of a distributed query — what a net::ShardServer
/// submits per wire request.  Runs scan_shard_partial on a dispatcher under
/// the engine's admission control, so remote load sheds with the same
/// back-pressure vocabulary as local jobs: a shed scan surfaces as a kShed
/// partial with a +inf bound, which the router folds into its fault algebra.
struct ShardScanJob {
  ShardScanMode mode = ShardScanMode::kCombined;
  const ShardedArchive* sharded = nullptr;
  std::size_t shard_id = 0;
  /// Required for kFullScan / kTileScreened.
  const RasterModel* model = nullptr;
  /// Required for kProgressiveModel / kCombined.
  const ProgressiveLinearModel* progressive = nullptr;
  std::size_t k = 10;
  JobLimits limits;
};

/// An Onion-index linear top-K query.
struct OnionJob {
  const OnionIndex* index = nullptr;
  std::vector<double> weights;
  std::size_t k = 10;
  JobLimits limits;
};

/// A fuzzy Cartesian composite query.
struct CompositeJob {
  enum class Processor : std::uint8_t { kFastSproc = 0, kSproc = 1, kBruteForce = 2 };

  const CartesianQuery* query = nullptr;
  Processor processor = Processor::kFastSproc;
  std::size_t k = 10;
  JobLimits limits;
};

/// Timing + accounting shared by every outcome type.
struct OutcomeInfo {
  CostMeter meter;
  bool cache_hit = false;
  std::uint64_t dispatch_order = 0;  ///< 0 for shed jobs (never dispatched)
  std::chrono::nanoseconds queue_wait{0};
  std::chrono::nanoseconds exec_time{0};
  /// The query's completed trace when the engine has a tracer; null
  /// otherwise.  Handed to the caller directly (not via Tracer::latest())
  /// so concurrent dispatchers can't hand back someone else's trace — the
  /// shard server serializes this tree into its reply.
  std::shared_ptr<const obs::Trace> trace;

  [[nodiscard]] std::chrono::nanoseconds latency() const noexcept {
    return queue_wait + exec_time;
  }
};

struct RasterOutcome : OutcomeInfo {
  RasterTopK result;
};
struct ShardedRasterOutcome : OutcomeInfo {
  /// On a result-cache hit only `result.merged` is restored; the per-shard
  /// dispositions belong to the execution that produced the entry and come
  /// back empty.
  ShardedTopK result;
};
struct ShardScanOutcome : OutcomeInfo {
  ShardScanResult result;
};
struct OnionOutcome : OutcomeInfo {
  OnionTopK result;
};
struct CompositeOutcome : OutcomeInfo {
  CompositeTopK result;
};

/// Rolling fault-domain health of one shard layout (archive/sharded.hpp
/// layout_tag()), aggregated over the engine's recent-executions window.
struct ShardLayoutHealth {
  std::uint64_t layout_tag = 0;
  std::size_t shard_count = 0;     ///< decoded from the tag
  std::uint64_t executions = 0;    ///< sharded runs of this layout in the window
  std::uint64_t timeouts = 0;      ///< per-shard sub-deadlines tripped
  std::uint64_t hedges = 0;        ///< hedge duplicates launched
  std::uint64_t failed_shards = 0; ///< shards that contributed nothing
};

/// Engine health verdict for /healthz: degraded when any recent sharded
/// execution tripped a shard timeout or lost a shard outright (hedges alone
/// do not degrade — a hedge that rescued a straggler is the system working).
struct EngineHealth {
  bool degraded = false;
  std::vector<ShardLayoutHealth> layouts;  ///< sorted by layout_tag
};

/// Snapshot of engine counters.
struct EngineStats {
  std::uint64_t submitted = 0;  ///< jobs offered (admitted + shed)
  std::uint64_t completed = 0;  ///< futures fulfilled by execution
  std::uint64_t shed = 0;       ///< rejected by admission control / shutdown
  std::uint64_t failed = 0;     ///< executions that ended in an exception
  std::size_t queue_depth = 0;  ///< currently queued
  std::size_t active = 0;       ///< currently executing
};

/// The engine facade: scheduler + intra-query thread pool + caches.
class QueryEngine {
 public:
  explicit QueryEngine(EngineConfig config = {});

  /// Stops dispatchers; jobs still queued are shed (their futures complete
  /// with ResultStatus::kShed).
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  [[nodiscard]] std::future<RasterOutcome> submit(RasterJob job);
  [[nodiscard]] std::future<ShardedRasterOutcome> submit(ShardedRasterJob job);
  [[nodiscard]] std::future<ShardScanOutcome> submit(ShardScanJob job);
  [[nodiscard]] std::future<OnionOutcome> submit(OnionJob job);
  [[nodiscard]] std::future<CompositeOutcome> submit(CompositeJob job);

  /// Holds dispatch (admission continues); resume() releases.  Used for
  /// deterministic queue build-up in tests and for maintenance windows.
  void pause();
  void resume();

  /// Blocks until the queue is empty and no query is executing.
  void drain();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] CacheStats result_cache_stats() const;
  [[nodiscard]] CacheStats tile_cache_stats() const;

  /// Fault-domain health over the last kHealthWindow sharded executions,
  /// aggregated per shard layout; feeds the stats server's /healthz.
  [[nodiscard]] EngineHealth health() const;

  /// Actual TCP port of the embedded stats server (useful with
  /// EngineConfig::stats_port = 0), or -1 when the server is off.
  [[nodiscard]] int stats_port() const noexcept;

 private:
  using ResultCache =
      ShardedLruCache<QueryCacheKey, std::shared_ptr<const RasterTopK>, QueryCacheKeyHash>;
  using TileCache = ShardedLruCache<TileCacheKey, Interval, TileCacheKeyHash>;

  /// A queued unit of work: run(false) executes, run(true) sheds.
  struct QueuedTask {
    std::function<void(bool shed)> run;
  };

  template <typename Outcome, typename Execute>
  std::future<Outcome> enqueue(const char* kind, const JobLimits& limits, Execute execute);

  void dispatcher_loop();
  void configure_context(QueryContext& ctx, const JobLimits& limits,
                         std::chrono::steady_clock::time_point submitted) const;
  /// Refreshes the cache hit-rate / occupancy gauges from CacheStats; called
  /// once per completed query (never per pixel) so the gauges track load
  /// without adding hot-path work.
  void refresh_cache_gauges();

  /// Appends one sharded execution's fault events to the rolling health
  /// window (bounded at kHealthWindow; oldest evicted).
  void record_shard_health(std::uint64_t layout_tag, const ShardFaultStats& stats);

  // ---- Shared-scan batching (config_.batch_max_fanin > 1) --------------
  // One open group per archive: the first member registers the group and
  // enqueues a single flush task (one queue slot per batch, however many
  // members join); later compatible submissions join for free until the
  // fan-in cap closes the group.  The flush task waits out batch_window for
  // stragglers, then runs every member through one engine/batch_exec.hpp
  // shared scan with per-member contexts, meters, cache traffic and spans.
  struct RasterBatchGroup;
  struct ShardScanBatchGroup;

  std::future<RasterOutcome> submit_batched(RasterJob job);
  std::future<ShardScanOutcome> submit_batched(ShardScanJob job);
  void run_raster_batch(const std::shared_ptr<RasterBatchGroup>& group, bool shed);
  void run_shard_scan_batch(const std::shared_ptr<ShardScanBatchGroup>& group, bool shed);

  RasterOutcome run_raster(const RasterJob& job, QueryContext& ctx);
  /// Per-tile screening bounds via the tile cache; falls back to computing
  /// (and charging) them like the executors do when the job is uncacheable.
  /// `sharded` non-null qualifies each tile's key with its owning shard and
  /// skips the global visit order (sharded executors order per shard).
  bool cached_tile_bounds(const TiledArchive& archive, std::uint64_t archive_id,
                          const ShardedArchive* sharded, const RasterModel& screen_model,
                          std::uint64_t model_fp, exec::TileBounds& tb, CostMeter& meter);

  EngineConfig config_;
  std::unique_ptr<ThreadPool> exec_pool_;
  std::unique_ptr<ResultCache> result_cache_;
  std::unique_ptr<TileCache> tile_cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;
  std::deque<QueuedTask> queues_[kPriorityLevels];
  std::size_t queued_ = 0;
  std::size_t active_ = 0;
  bool paused_ = false;
  bool stopping_ = false;

  // Batch formation state; groups live here between the first member's
  // admission and the flush task's execution.  batch_cv_ wakes flush tasks
  // waiting out their window when a group closes (fan-in reached) or the
  // engine stops.
  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::atomic<bool> batch_stop_{false};
  std::unordered_map<const TiledArchive*, std::shared_ptr<RasterBatchGroup>> open_raster_batches_;
  std::unordered_map<const ShardedArchive*, std::shared_ptr<ShardScanBatchGroup>>
      open_shard_batches_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> dispatch_seq_{0};

  // Registry handles; inert (no-op) when config_.metrics is null.
  obs::Counter jobs_submitted_metric_;
  obs::Counter jobs_completed_metric_;
  obs::Counter jobs_shed_metric_;
  obs::Counter jobs_failed_metric_;
  obs::Gauge queue_depth_gauge_;
  obs::Gauge active_gauge_;
  obs::Histogram queue_wait_hist_;
  obs::Histogram exec_time_hist_;
  obs::Gauge result_cache_hit_ppm_gauge_;
  obs::Gauge result_cache_entries_gauge_;
  obs::Gauge tile_cache_hit_ppm_gauge_;
  obs::Gauge tile_cache_entries_gauge_;
  obs::Counter batch_batches_metric_;
  obs::Counter batch_members_metric_;
  obs::Histogram batch_fanin_hist_;

  // Rolling fault-domain window: one event per sharded execution, newest at
  // the back.  Small (kHealthWindow) and touched once per query, so a plain
  // mutex is fine.
  struct ShardHealthEvent {
    std::uint64_t layout_tag = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t hedges = 0;
    std::uint64_t failed_shards = 0;
  };
  static constexpr std::size_t kHealthWindow = 256;
  mutable std::mutex health_mutex_;
  std::deque<ShardHealthEvent> health_window_;

  std::vector<std::thread> dispatchers_;
  std::unique_ptr<obs::StatsServer> stats_server_;
};

}  // namespace mmir
