#pragma once
// Work-stealing thread pool — the execution substrate of the concurrent
// query engine (engine/scheduler.hpp) and the tile-parallel executors
// (engine/parallel_exec.hpp).
//
// Design (deliberately boring, in the Blumofe–Leiserson shape):
//   * every worker owns a deque; the owner pushes/pops its back (LIFO, cache
//     warm), idle workers steal from other deques' front (FIFO, oldest task
//     — the one most likely to represent a large untouched chunk of work);
//   * submit() distributes tasks round-robin so stealing is the exception,
//     not the common path;
//   * parallel_for() chops an index range into grain-sized chunks behind a
//     shared atomic cursor.  The *calling* thread participates: it claims
//     chunks like any worker and only sleeps once no chunk remains, so a
//     parallel_for issued while every pool worker is busy with other queries
//     still completes (degraded to serial) instead of deadlocking — the
//     property that lets many concurrent queries share one pool.
//
// A pool of size 0 is valid and runs everything inline on the caller; the
// engine uses it as its "serial execution" mode.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mmir {

class ThreadPool {
 public:
  /// Spawns `workers` threads.  0 is valid: no threads, all work runs inline
  /// on the submitting/calling thread.
  explicit ThreadPool(std::size_t workers);

  /// Joins after draining every queued task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Maximum number of threads parallel_for() may run a body on at once:
  /// every pool worker plus the calling thread.  Callers size per-worker
  /// state arrays with this; the body's worker index is < slot_count().
  [[nodiscard]] std::size_t slot_count() const noexcept { return workers_.size() + 1; }

  /// Enqueues a fire-and-forget task.  With zero workers the task runs
  /// inline before submit returns.
  void submit(std::function<void()> task);

  /// Enqueues a latency-critical task into a shared front-of-line queue that
  /// every worker drains before its own deque.  Hedged duplicates of
  /// straggler shards (engine/fault_domain.hpp) go through here: a hedge
  /// queued behind the very backlog that made the primary straggle would
  /// defeat its purpose.  With zero workers the task runs inline.
  void submit_urgent(std::function<void()> task);

  /// Chunked parallel-for over [begin, end): splits the range into chunks of
  /// at most `grain` indices and executes `body(chunk_begin, chunk_end,
  /// slot)` across the pool workers and the calling thread.  `slot` is a
  /// dense per-invocation worker index in [0, slot_count()); two chunks with
  /// the same slot never run concurrently, so body may use slot to index
  /// unsynchronized per-worker state.  Returns once every chunk has run;
  /// the completion handshake is acquire/release, so everything the bodies
  /// wrote happens-before the return.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  WorkerQueue urgent_;  ///< shared front-of-line queue; drained before own work
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> urgent_count_{0};
  std::atomic<std::size_t> push_cursor_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace mmir
