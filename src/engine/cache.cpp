#include "engine/cache.hpp"

#include <cstring>
#include <ostream>

namespace mmir {

std::ostream& operator<<(std::ostream& os, const CacheStats& stats) {
  os << "hits " << stats.hits << ", misses " << stats.misses << " ("
     << stats.hit_rate() * 100.0 << "% hit), insertions " << stats.insertions << ", evictions "
     << stats.evictions;
  return os;
}

std::uint64_t fnv1a_bytes(const void* data, std::size_t size, std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t model_fingerprint(const LinearModel& model) noexcept {
  const std::span<const double> weights = model.weights();
  std::uint64_t hash = fnv1a_bytes(weights.data(), weights.size_bytes());
  const double bias = model.bias();
  return fnv1a_bytes(&bias, sizeof(bias), hash);
}

std::uint64_t model_fingerprint(const ProgressiveLinearModel& model) noexcept {
  std::uint64_t hash = model_fingerprint(model.model());
  const std::span<const std::size_t> order = model.order();
  return fnv1a_bytes(order.data(), order.size_bytes(), hash);
}

}  // namespace mmir
