#pragma once
// Batched shared-scan execution (multi-query optimisation).
//
// Many concurrent model-based queries walk the same tiled archive; a batch
// visits every needed tile ONCE, reads each pixel once, and evaluates all
// member models against it — amortising the decode/gather cost that
// dominates cold full scans.  Members keep fully independent semantics:
//
//   * attribution — every member owns its CostMeter and is billed exactly
//     what it would have paid solo: pixels it evaluates (including its
//     logical share of a physically shared read), its own metadata pass,
//     its own pruned-tile credits;
//   * fault envelopes — every member owns its QueryContext; a member whose
//     budget or deadline trips drops out with a certified partial top-K
//     prefix (sound missed_bound) while its batch-mates keep scanning;
//   * screening — tile-screened members apply their own per-model interval
//     bounds per tile; a tile pruned for one member is still scanned for
//     another that needs it.
//
// Correctness contract: a member's result is byte-identical to the same
// query run solo through the serial executors.  This holds because every
// executor offers candidates under the canonical (score desc, pixel rank
// asc) order (util/topk.hpp offer_ranked), making the top-K a pure function
// of the scored pixel multiset rather than of the visit order — the batch
// may interleave tiles any way it likes and still land on the same bytes.

#include <cstdint>
#include <span>
#include <vector>

#include "archive/tiled.hpp"
#include "core/exec_kernels.hpp"
#include "core/progressive_exec.hpp"
#include "core/query_context.hpp"
#include "core/raster_model.hpp"
#include "linear/progressive.hpp"
#include "obs/trace.hpp"
#include "util/cost.hpp"
#include "util/interval.hpp"

namespace mmir {

/// Execution strategy of one batch member; mirrors RasterJob::Mode /
/// ShardScanMode (numeric values match for direct casts).
enum class BatchScanMode : std::uint8_t {
  kFullScan = 0,
  kProgressiveModel = 1,
  kTileScreened = 2,
  kCombined = 3,
};

/// One query riding a shared scan.  The caller owns everything referenced;
/// `ctx` and `meter` are per-member (attribution and fault isolation), the
/// archive is shared by construction.
struct BatchMemberSpec {
  BatchScanMode mode = BatchScanMode::kFullScan;
  /// Full/screening model; required for kFullScan and kTileScreened.
  const RasterModel* model = nullptr;
  /// Staged model; required for kProgressiveModel and kCombined.
  const ProgressiveLinearModel* progressive = nullptr;
  std::size_t k = 10;
  QueryContext* ctx = nullptr;  ///< member-owned fault envelope (required)
  CostMeter* meter = nullptr;   ///< member-owned accounting (required)
  /// Restrict the member to these global tile indices (ascending); null
  /// scans the whole archive.  Lets a shard-server batch ShardScanJobs whose
  /// members cover different shards of one archive.
  const std::vector<std::size_t>* tile_subset = nullptr;
  /// Per-band ranges of the member's domain, for its missed-score bound when
  /// it trips before tile bounds exist; null uses archive.band_ranges().
  const std::vector<Interval>* domain_ranges = nullptr;
  /// Bad-pixel count of the member's domain for completion-status purposes;
  /// kDomainBadFromArchive uses archive.bad_pixel_count().
  static constexpr std::uint64_t kDomainBadFromArchive = ~std::uint64_t{0};
  std::uint64_t domain_bad_pixels = kDomainBadFromArchive;
  /// Precomputed screening bounds (engine tile cache), tile-index order over
  /// the whole archive; null makes the member run — and pay for — its own
  /// metadata pass, exactly like a solo uncached run.
  const exec::TileBounds* precomputed_bounds = nullptr;
  /// Per-member trace span; null runs untraced.
  const obs::Span* span = nullptr;
};

/// Per-member outcome of a shared scan, mirroring what the solo executors
/// report (plus the per-shard tallies the shard path needs).
struct BatchMemberResult {
  RasterTopK result;
  std::uint64_t scan_ops = 0;  ///< member ops inside the scan stage
  std::uint64_t pixels_visited = 0;
  std::uint64_t tiles_scanned = 0;
  std::uint64_t tiles_pruned = 0;
};

/// Runs all members over `archive` in one shared tile-index-order scan.
/// Returns one result per member, in member order.
[[nodiscard]] std::vector<BatchMemberResult> batch_scan(
    const TiledArchive& archive, std::span<const BatchMemberSpec> members);

}  // namespace mmir
