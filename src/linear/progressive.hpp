#pragma once
// Progressive linear-model execution (paper §3.1).
//
// "If |a1,a2| ≫ |a3,a4| then a coarser representation of the model … is
//  R*(x,y,t) ≈ a1·X1 + a2·X2" — the model is decomposed into stages ordered
// by each term's *contribution* |ai| · spread(Xi), and candidates are
// evaluated stage by stage.  After each stage, interval bounds on the not-yet
// -evaluated terms prune every candidate whose best possible final value
// cannot reach the current K-th best guaranteed value.  This is exact top-K
// with a fraction of the multiply-adds — the pm factor of §4.2.

#include <cstddef>
#include <span>
#include <vector>

#include "data/tuples.hpp"
#include "index/seqscan.hpp"
#include "linear/model.hpp"
#include "util/cost.hpp"
#include "util/interval.hpp"

namespace mmir {

/// Stage decomposition of a linear model for a known attribute-range box.
class ProgressiveLinearModel {
 public:
  /// `ranges` bounds each attribute over the archive (from tile summaries or
  /// a single data pass); they drive both the stage ordering and the pruning
  /// bounds.
  ProgressiveLinearModel(const LinearModel& model, std::vector<Interval> ranges);

  [[nodiscard]] const LinearModel& model() const noexcept { return model_; }
  /// Attribute evaluation order, highest contribution first.
  [[nodiscard]] std::span<const std::size_t> order() const noexcept { return order_; }
  /// Contribution score |w_i|·width(range_i) of the attribute at order
  /// position `stage`.
  [[nodiscard]] double contribution(std::size_t stage) const;
  /// Interval of the sum of all terms *after* order position `stage`
  /// (i.e. the uncertainty remaining once stages 0..stage have been added).
  [[nodiscard]] Interval tail(std::size_t stage) const;

  /// The coarse model R* made of the first `terms` stages (§3.1): remaining
  /// attributes get weight zero.  Attribute order matches the full model.
  [[nodiscard]] LinearModel truncated(std::size_t terms) const;

 private:
  LinearModel model_;
  std::vector<Interval> ranges_;
  std::vector<std::size_t> order_;
  std::vector<Interval> tails_;  // tails_[s] = sum of term intervals after stage s
};

struct ProgressiveScanStats {
  std::size_t stages_run = 0;
  std::size_t candidates_after_final_stage = 0;
};

/// Exact top-k maximizers of the model over `points`, evaluated progressively.
/// Charges the meter one op + one point per term actually computed; pruned
/// candidates are tallied via CostMeter::add_pruned.
[[nodiscard]] std::vector<ScoredId> progressive_top_k(const TupleSet& points,
                                                      const ProgressiveLinearModel& model,
                                                      std::size_t k, CostMeter& meter,
                                                      ProgressiveScanStats* stats = nullptr);

/// Per-attribute [min, max] ranges of a tuple set (one pass).
[[nodiscard]] std::vector<Interval> attribute_ranges(const TupleSet& points);

}  // namespace mmir
