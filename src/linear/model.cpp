#include "linear/model.hpp"

namespace mmir {

LinearModel::LinearModel(std::vector<double> weights, double bias, std::vector<std::string> names)
    : weights_(std::move(weights)), bias_(bias), names_(std::move(names)) {
  MMIR_EXPECTS(!weights_.empty());
  if (names_.empty()) {
    names_.reserve(weights_.size());
    for (std::size_t i = 0; i < weights_.size(); ++i) names_.push_back("x" + std::to_string(i));
  }
  MMIR_EXPECTS(names_.size() == weights_.size());
}

double LinearModel::evaluate(std::span<const double> x) const {
  MMIR_EXPECTS(x.size() == weights_.size());
  double sum = bias_;
  for (std::size_t i = 0; i < weights_.size(); ++i) sum += weights_[i] * x[i];
  return sum;
}

Interval LinearModel::evaluate_interval(std::span<const Interval> x) const {
  MMIR_EXPECTS(x.size() == weights_.size());
  Interval sum = Interval::point(bias_);
  for (std::size_t i = 0; i < weights_.size(); ++i) sum = sum + weights_[i] * x[i];
  return sum;
}

LinearModel hps_risk_model() {
  return LinearModel({0.443, 0.222, 0.153, 0.183}, 0.0, {"b4", "b5", "b7", "elevation_m"});
}

LinearModel fico_score_model() {
  // FICO = 900 − 28·late − (−6)·credit_age − 180·utilization − (−2)·residence
  //            − (−3)·employment − 60·derogatories
  // expressed directly as weights on the attributes plus bias 900.
  return LinearModel({-28.0, 6.0, -180.0, 2.0, 3.0, -60.0}, 900.0,
                     {"late_payments", "credit_age_years", "utilization", "residence_years",
                      "employment_years", "derogatories"});
}

}  // namespace mmir
