#include "linear/regression.hpp"

#include <cmath>

#include "util/matrix.hpp"
#include "util/stats.hpp"

namespace mmir {

RegressionResult fit_linear(const TupleSet& x, std::span<const double> y, double ridge,
                            std::vector<std::string> names) {
  MMIR_EXPECTS(x.size() == y.size());
  MMIR_EXPECTS(x.size() > x.dim());
  MMIR_EXPECTS(ridge >= 0.0);
  const std::size_t n = x.size();
  const std::size_t d = x.dim();
  const std::size_t m = d + 1;  // weights + intercept (last column)

  // Normal equations A^T A w = A^T y with an appended all-ones column.
  Matrix ata(m, m, 0.0);
  std::vector<double> aty(m, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t i = 0; i < m; ++i) {
      const double xi = i < d ? row[i] : 1.0;
      aty[i] += xi * y[r];
      for (std::size_t j = i; j < m; ++j) {
        const double xj = j < d ? row[j] : 1.0;
        ata(i, j) += xi * xj;
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < i; ++j) ata(i, j) = ata(j, i);
  for (std::size_t i = 0; i < d; ++i) ata(i, i) += ridge;  // no penalty on intercept

  std::vector<double> solution;
  try {
    solution = cholesky_solve(ata, aty);
  } catch (const Error&) {
    if (ridge > 0.0) throw;
    throw Error("fit_linear: singular design matrix (try ridge > 0)");
  }

  std::vector<double> weights(solution.begin(), solution.begin() + static_cast<long>(d));
  const double bias = solution[d];
  RegressionResult result{LinearModel(std::move(weights), bias, std::move(names)), 0.0, 0.0};

  // Fit diagnostics.
  OnlineStats ys;
  for (double v : y) ys.add(v);
  double sse = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double e = result.model.evaluate(x.row(r)) - y[r];
    sse += e * e;
  }
  const double sst = ys.variance() * static_cast<double>(n);
  result.rmse = std::sqrt(sse / static_cast<double>(n));
  result.r_squared = sst > 0.0 ? 1.0 - sse / sst : 1.0;
  return result;
}

double r_squared(const LinearModel& model, const TupleSet& x, std::span<const double> y) {
  MMIR_EXPECTS(x.size() == y.size());
  MMIR_EXPECTS(x.size() > 1);
  OnlineStats ys;
  for (double v : y) ys.add(v);
  double sse = 0.0;
  for (std::size_t r = 0; r < x.size(); ++r) {
    const double e = model.evaluate(x.row(r)) - y[r];
    sse += e * e;
  }
  const double sst = ys.variance() * static_cast<double>(x.size());
  return sst > 0.0 ? 1.0 - sse / sst : 1.0;
}

}  // namespace mmir
