#pragma once
// Ordinary least squares / ridge regression — the "well known techniques …
// in deriving the optimal weights based on collections of data" of §2.1, and
// the calibration step (steps 1–2) of the Fig. 5 workflow.

#include <span>
#include <string>
#include <vector>

#include "data/tuples.hpp"
#include "linear/model.hpp"

namespace mmir {

struct RegressionResult {
  LinearModel model;       ///< fitted weights + intercept
  double r_squared = 0.0;  ///< coefficient of determination on the fit data
  double rmse = 0.0;       ///< root-mean-square residual
};

/// Fits y ≈ w·x + b by least squares over the rows of `x`.
/// `ridge` adds L2 regularization (lambda >= 0) on the weights (not the
/// intercept), which also makes rank-deficient designs solvable.
/// Throws mmir::Error when the normal equations are singular and ridge == 0.
[[nodiscard]] RegressionResult fit_linear(const TupleSet& x, std::span<const double> y,
                                          double ridge = 0.0,
                                          std::vector<std::string> names = {});

/// Out-of-sample R² of a model on data (1 − SSE/SST; can be negative).
[[nodiscard]] double r_squared(const LinearModel& model, const TupleSet& x,
                               std::span<const double> y);

}  // namespace mmir
