#pragma once
// Linear time-invariant models (paper §2.1):  Y = a1·X1 + a2·X2 + … + an·Xn
// (+ optional constant term).
//
// Presets reproduce the two §2.1 examples: the Hantavirus Pulmonary Syndrome
// risk model over Landsat bands 4/5/7 + DEM elevation, and a FICO-style
// credit score of the form  FICO = 900 − Σ ai·Xi.

#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/interval.hpp"

namespace mmir {

/// Immutable linear model with named attributes.
class LinearModel {
 public:
  LinearModel(std::vector<double> weights, double bias, std::vector<std::string> names);

  [[nodiscard]] std::size_t dim() const noexcept { return weights_.size(); }
  [[nodiscard]] double weight(std::size_t i) const {
    MMIR_EXPECTS(i < weights_.size());
    return weights_[i];
  }
  [[nodiscard]] std::span<const double> weights() const noexcept { return weights_; }
  [[nodiscard]] double bias() const noexcept { return bias_; }
  [[nodiscard]] const std::string& name(std::size_t i) const {
    MMIR_EXPECTS(i < names_.size());
    return names_[i];
  }

  /// Model value at an attribute vector.
  [[nodiscard]] double evaluate(std::span<const double> x) const;

  /// Interval bound of the model over an attribute box (used for screening).
  [[nodiscard]] Interval evaluate_interval(std::span<const Interval> x) const;

 private:
  std::vector<double> weights_;
  double bias_;
  std::vector<std::string> names_;
};

/// §2.1: R(x,y) = 0.443·b4 + 0.222·b5 + 0.153·b7 + 0.183·elevation.
/// Attribute order: b4, b5, b7, elevation_m.
[[nodiscard]] LinearModel hps_risk_model();

/// §2.1: FICO = 900 − Σ ai·Xi over the six credit attributes of
/// data/tuples.hpp (CreditAttribute order).  Negative a_i for credit age /
/// residence / employment encode that longer histories *raise* the score.
[[nodiscard]] LinearModel fico_score_model();

}  // namespace mmir
