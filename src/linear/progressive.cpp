#include "linear/progressive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stats.hpp"
#include "util/topk.hpp"

namespace mmir {

ProgressiveLinearModel::ProgressiveLinearModel(const LinearModel& model,
                                               std::vector<Interval> ranges)
    : model_(model), ranges_(std::move(ranges)) {
  MMIR_EXPECTS(ranges_.size() == model_.dim());
  order_.resize(model_.dim());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    const double ca = std::abs(model_.weight(a)) * ranges_[a].width();
    const double cb = std::abs(model_.weight(b)) * ranges_[b].width();
    if (ca != cb) return ca > cb;
    return a < b;
  });
  // tails_[s]: interval of Σ_{j>s} w_order[j] · X_order[j].
  tails_.assign(model_.dim(), Interval::point(0.0));
  Interval tail = Interval::point(0.0);
  for (std::size_t s = model_.dim(); s-- > 0;) {
    tails_[s] = tail;  // uncertainty remaining AFTER evaluating stage s
    const std::size_t attr = order_[s];
    tail = tail + model_.weight(attr) * ranges_[attr];
  }
}

double ProgressiveLinearModel::contribution(std::size_t stage) const {
  MMIR_EXPECTS(stage < order_.size());
  const std::size_t attr = order_[stage];
  return std::abs(model_.weight(attr)) * ranges_[attr].width();
}

Interval ProgressiveLinearModel::tail(std::size_t stage) const {
  MMIR_EXPECTS(stage < tails_.size());
  return tails_[stage];
}

LinearModel ProgressiveLinearModel::truncated(std::size_t terms) const {
  MMIR_EXPECTS(terms >= 1 && terms <= order_.size());
  std::vector<double> weights(model_.dim(), 0.0);
  std::vector<std::string> names;
  names.reserve(model_.dim());
  for (std::size_t i = 0; i < model_.dim(); ++i) names.push_back(model_.name(i));
  for (std::size_t s = 0; s < terms; ++s) weights[order_[s]] = model_.weight(order_[s]);
  return LinearModel(std::move(weights), model_.bias(), std::move(names));
}

std::vector<Interval> attribute_ranges(const TupleSet& points) {
  MMIR_EXPECTS(points.size() > 0);
  std::vector<OnlineStats> stats(points.dim());
  for (std::size_t r = 0; r < points.size(); ++r) {
    const auto row = points.row(r);
    for (std::size_t d = 0; d < points.dim(); ++d) stats[d].add(row[d]);
  }
  std::vector<Interval> ranges;
  ranges.reserve(points.dim());
  for (const auto& s : stats) ranges.push_back(s.range());
  return ranges;
}

std::vector<ScoredId> progressive_top_k(const TupleSet& points,
                                        const ProgressiveLinearModel& model, std::size_t k,
                                        CostMeter& meter, ProgressiveScanStats* stats) {
  MMIR_EXPECTS(points.dim() == model.model().dim());
  MMIR_EXPECTS(k > 0);
  ScopedTimer timer(meter);
  const std::size_t n = points.size();
  const std::size_t dim = points.dim();
  const auto order = model.order();

  // Candidates carry their running partial sum.
  struct Candidate {
    std::uint32_t id;
    double partial;
  };
  std::vector<Candidate> candidates(n);
  for (std::size_t i = 0; i < n; ++i) {
    candidates[i] = {static_cast<std::uint32_t>(i), model.model().bias()};
  }

  std::uint64_t terms_computed = 0;
  for (std::size_t stage = 0; stage < dim; ++stage) {
    const std::size_t attr = order[stage];
    const double w = model.model().weight(attr);
    for (auto& c : candidates) c.partial += w * points.row(c.id)[attr];
    terms_computed += candidates.size();
    if (stats != nullptr) stats->stages_run = stage + 1;

    if (stage + 1 == dim) break;  // final stage: partials are exact values

    // Guaranteed value of the current k-th best: partial + tail.lo.
    const Interval tail = model.tail(stage);
    if (candidates.size() > k) {
      // k-th largest guaranteed lower bound.
      std::vector<double> lows;
      lows.reserve(candidates.size());
      for (const auto& c : candidates) lows.push_back(c.partial + tail.lo);
      std::nth_element(lows.begin(), lows.begin() + static_cast<long>(k - 1), lows.end(),
                       std::greater<>());
      const double kth_low = lows[k - 1];
      // Keep candidates whose best possible value can still reach kth_low.
      const auto keep_end = std::remove_if(candidates.begin(), candidates.end(),
                                           [&](const Candidate& c) {
                                             return c.partial + tail.hi < kth_low;
                                           });
      meter.add_pruned(static_cast<std::uint64_t>(std::distance(keep_end, candidates.end())));
      candidates.erase(keep_end, candidates.end());
    }
    if (candidates.size() <= k) {
      // Cheaper to finish the survivors exactly than to keep staging.
      for (auto& c : candidates) {
        for (std::size_t s = stage + 1; s < dim; ++s) {
          const std::size_t a = order[s];
          c.partial += model.model().weight(a) * points.row(c.id)[a];
          ++terms_computed;
        }
      }
      break;
    }
  }

  meter.add_ops(terms_computed);
  meter.add_points(terms_computed);
  meter.add_bytes(terms_computed * sizeof(double));
  if (stats != nullptr) stats->candidates_after_final_stage = candidates.size();

  TopK<std::uint32_t> top(k);
  for (const auto& c : candidates) top.offer(c.partial, c.id);
  std::vector<ScoredId> out;
  for (auto& entry : top.take_sorted()) out.push_back(ScoredId{entry.item, entry.score});
  return out;
}

}  // namespace mmir
