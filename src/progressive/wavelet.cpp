#include "progressive/wavelet.hpp"

#include <cmath>
#include <vector>

namespace mmir {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

std::size_t dyadic_cover(std::size_t w, std::size_t h) {
  std::size_t n = 1;
  while (n < w || n < h) n *= 2;
  return n;
}

}  // namespace

HaarWavelet2D::HaarWavelet2D(const Grid& input, std::size_t levels) {
  MMIR_EXPECTS(!input.empty());
  original_width_ = input.width();
  original_height_ = input.height();
  padded_ = dyadic_cover(original_width_, original_height_);

  // Clamp the level count to the dyadic depth.
  std::size_t max_levels = 0;
  for (std::size_t n = padded_; n > 1; n /= 2) ++max_levels;
  levels_ = std::min(levels, max_levels);
  MMIR_EXPECTS(levels_ > 0);

  // Edge-replicated padding to the dyadic square.
  coeff_ = Grid(padded_, padded_);
  for (std::size_t y = 0; y < padded_; ++y) {
    for (std::size_t x = 0; x < padded_; ++x) {
      coeff_.cell(x, y) =
          input.at_clamped(static_cast<long>(std::min(x, original_width_ - 1)),
                           static_cast<long>(std::min(y, original_height_ - 1)));
    }
  }

  // In-place Mallat decomposition on the shrinking approximation quadrant.
  std::vector<double> scratch(padded_);
  for (std::size_t level = 0; level < levels_; ++level) {
    const std::size_t n = level_size(level);
    const std::size_t half = n / 2;
    // Rows.
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t i = 0; i < half; ++i) {
        const double a = coeff_.cell(2 * i, y);
        const double b = coeff_.cell(2 * i + 1, y);
        scratch[i] = (a + b) * kInvSqrt2;
        scratch[half + i] = (a - b) * kInvSqrt2;
      }
      for (std::size_t i = 0; i < n; ++i) coeff_.cell(i, y) = scratch[i];
    }
    // Columns.
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t i = 0; i < half; ++i) {
        const double a = coeff_.cell(x, 2 * i);
        const double b = coeff_.cell(x, 2 * i + 1);
        scratch[i] = (a + b) * kInvSqrt2;
        scratch[half + i] = (a - b) * kInvSqrt2;
      }
      for (std::size_t i = 0; i < n; ++i) coeff_.cell(x, i) = scratch[i];
    }
  }
}

Grid HaarWavelet2D::approximation(std::size_t level) const {
  MMIR_EXPECTS(level <= levels_);
  if (level == 0) return reconstruct();
  const std::size_t n = level_size(level);
  // Each orthonormal Haar step scales the approximation by sqrt(2) per axis,
  // so level L coefficients are local means times 2^L.
  const double scale = std::pow(2.0, -static_cast<double>(level));
  // Crop the approximation quadrant to the region covering original pixels.
  const std::size_t w = std::max<std::size_t>(1, (original_width_ + (padded_ / n) - 1) / (padded_ / n));
  const std::size_t h = std::max<std::size_t>(1, (original_height_ + (padded_ / n) - 1) / (padded_ / n));
  Grid out(std::min(w, n), std::min(h, n));
  for (std::size_t y = 0; y < out.height(); ++y)
    for (std::size_t x = 0; x < out.width(); ++x) out.cell(x, y) = coeff_.cell(x, y) * scale;
  return out;
}

double HaarWavelet2D::detail_energy(std::size_t level) const {
  MMIR_EXPECTS(level >= 1 && level <= levels_);
  const std::size_t n = level_size(level - 1);
  const std::size_t half = n / 2;
  double energy = 0.0;
  // Horizontal detail (top-right), vertical (bottom-left), diagonal (bottom-right).
  for (std::size_t y = 0; y < half; ++y) {
    for (std::size_t x = 0; x < half; ++x) {
      const double h = coeff_.cell(half + x, y);
      const double v = coeff_.cell(x, half + y);
      const double d = coeff_.cell(half + x, half + y);
      energy += h * h + v * v + d * d;
    }
  }
  return energy;
}

Grid HaarWavelet2D::reconstruct() const {
  Grid work = coeff_;
  std::vector<double> scratch(padded_);
  for (std::size_t level = levels_; level > 0; --level) {
    const std::size_t n = level_size(level - 1);
    const std::size_t half = n / 2;
    // Columns (inverse of the forward order).
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t i = 0; i < half; ++i) {
        const double s = work.cell(x, i);
        const double d = work.cell(x, half + i);
        scratch[2 * i] = (s + d) * kInvSqrt2;
        scratch[2 * i + 1] = (s - d) * kInvSqrt2;
      }
      for (std::size_t i = 0; i < n; ++i) work.cell(x, i) = scratch[i];
    }
    // Rows.
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t i = 0; i < half; ++i) {
        const double s = work.cell(i, y);
        const double d = work.cell(half + i, y);
        scratch[2 * i] = (s + d) * kInvSqrt2;
        scratch[2 * i + 1] = (s - d) * kInvSqrt2;
      }
      for (std::size_t i = 0; i < n; ++i) work.cell(i, y) = scratch[i];
    }
  }
  Grid out(original_width_, original_height_);
  for (std::size_t y = 0; y < original_height_; ++y)
    for (std::size_t x = 0; x < original_width_; ++x) out.cell(x, y) = work.cell(x, y);
  return out;
}

}  // namespace mmir
