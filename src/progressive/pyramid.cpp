#include "progressive/pyramid.hpp"

#include <algorithm>

namespace mmir {

ResolutionPyramid::ResolutionPyramid(const Grid& base, std::size_t levels) {
  MMIR_EXPECTS(levels >= 1);
  MMIR_EXPECTS(!base.empty());
  grids_.push_back(base);
  while (grids_.size() < levels) {
    const Grid& prev = grids_.back();
    if (prev.width() == 1 && prev.height() == 1) break;
    grids_.push_back(prev.downsample2x());
  }
}

PixelRegion ResolutionPyramid::base_region(std::size_t l, std::size_t x, std::size_t y) const {
  MMIR_EXPECTS(l < grids_.size());
  MMIR_EXPECTS(x < grids_[l].width() && y < grids_[l].height());
  const std::size_t scale = std::size_t{1} << l;
  PixelRegion region;
  region.x0 = x * scale;
  region.y0 = y * scale;
  const Grid& base = grids_.front();
  region.width = std::min(scale, base.width() - region.x0);
  region.height = std::min(scale, base.height() - region.y0);
  return region;
}

MultiBandPyramid::MultiBandPyramid(const std::vector<const Grid*>& bands, std::size_t levels) {
  MMIR_EXPECTS(!bands.empty());
  pyramids_.reserve(bands.size());
  for (const Grid* band : bands) {
    MMIR_EXPECTS(band != nullptr);
    pyramids_.emplace_back(*band, levels);
  }
  for (const auto& p : pyramids_) {
    MMIR_EXPECTS(p.levels() == pyramids_.front().levels());
  }
}

}  // namespace mmir
