#pragma once
// Semantic region extraction — the top abstraction level of §3.1's
// progressive data representation (raw → features → *semantics*).
//
// A label raster (land-cover classes, iso-band classes, classifier output)
// is segmented into 4-connected regions; each region carries its class,
// area, bounding box and centroid.  Decision-support queries then operate on
// a handful of semantic objects ("the largest contiguous high-risk zone")
// instead of raw cells — the cheapest representation in the hierarchy.

#include <cstdint>
#include <vector>

#include "data/grid.hpp"

namespace mmir {

/// One connected region of equal-valued cells.
struct Region {
  std::uint32_t id = 0;       ///< dense region id (index into the region list)
  double label = 0.0;         ///< the cell value shared by the region
  std::size_t area = 0;       ///< cell count
  std::size_t min_x = 0, min_y = 0, max_x = 0, max_y = 0;  ///< inclusive bbox
  double centroid_x = 0.0;
  double centroid_y = 0.0;

  [[nodiscard]] std::size_t bbox_width() const noexcept { return max_x - min_x + 1; }
  [[nodiscard]] std::size_t bbox_height() const noexcept { return max_y - min_y + 1; }
};

/// Segmentation result: per-cell region id plus the region table.
struct Segmentation {
  Grid region_ids;             ///< region id per cell (as double)
  std::vector<Region> regions;

  [[nodiscard]] const Region& region_at(std::size_t x, std::size_t y) const;
};

/// 4-connected components of equal-valued cells.
[[nodiscard]] Segmentation label_regions(const Grid& labels);

/// Regions of a given class, largest first, optionally dropping regions
/// smaller than `min_area`.
[[nodiscard]] std::vector<Region> regions_of_class(const Segmentation& segmentation,
                                                   double label, std::size_t min_area = 1);

}  // namespace mmir
