#pragma once
// Multi-abstraction feature level: derived representations that are much
// smaller than raw pixels but preserve enough signal for screening (§3.1:
// "raw information can be processed into alternate formulations such as
// features (texture, color, shape, etc.)… at the expense of fidelity").
//
// TextureDescriptor is the workhorse for the progressive texture-matching
// experiment (E3 / ref [12]): a cheap coarse part (mean, variance) that can be
// computed from low-resolution data, plus a fine part (directional edge
// energies) that requires full resolution.  IsoBands implements the paper's
// contour abstraction ("contours can be computed from a data array, allowing
// very rapid identification of areas with low or high parameter values").

#include <cstddef>
#include <vector>

#include "data/grid.hpp"
#include "util/cost.hpp"

namespace mmir {

/// Texture features of a raster window.
struct TextureDescriptor {
  double mean = 0.0;
  double variance = 0.0;
  double edge_h = 0.0;  ///< mean |horizontal gradient|
  double edge_v = 0.0;  ///< mean |vertical gradient|
  double edge_d = 0.0;  ///< mean |diagonal gradient|

  /// Distance using only the coarse components (mean, variance) — computable
  /// from a low-resolution approximation.
  [[nodiscard]] double coarse_distance(const TextureDescriptor& other) const noexcept;
  /// Full-feature Euclidean distance.
  [[nodiscard]] double full_distance(const TextureDescriptor& other) const noexcept;
};

/// Extracts the full descriptor from a window of `grid`, charging `meter`
/// for every pixel touched.
[[nodiscard]] TextureDescriptor extract_texture(const Grid& grid, std::size_t x0, std::size_t y0,
                                                std::size_t w, std::size_t h, CostMeter& meter);

/// Extracts only the coarse (mean/variance) components; edge fields are zero.
[[nodiscard]] TextureDescriptor extract_coarse_texture(const Grid& grid, std::size_t x0,
                                                       std::size_t y0, std::size_t w,
                                                       std::size_t h, CostMeter& meter);

/// Iso-band (contour-class) abstraction: quantizes a raster into `bands`
/// equal-width value classes between the grid min and max.  The result is a
/// semantic raster that answers "where are the high-value areas" in one pass.
[[nodiscard]] Grid iso_bands(const Grid& grid, std::size_t bands);

/// Cells of `grid` whose iso-band class is >= `min_band` (fast high-value
/// area identification on the abstracted representation).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> cells_at_or_above(
    const Grid& banded, double min_band);

}  // namespace mmir
