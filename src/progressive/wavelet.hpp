#pragma once
// 2-D Haar wavelet transform — the multi-resolution leg of the paper's
// progressive data representation (§3.1, refs [1-3]).
//
// The transform is orthonormal (coefficients scaled by 1/sqrt(2) per step),
// computed level by level on the approximation quadrant.  Non-power-of-two
// inputs are edge-replicated up to the enclosing dyadic square; the original
// size is remembered so reconstruction crops back exactly.
//
// Two views matter to the retrieval engines:
//   * approximation(level): a coarse raster whose cells are (scaled) local
//     means — what a progressive model evaluates first;
//   * detail_energy(level): the energy of the H/V/D detail subbands — a cheap
//     texture feature for the multi-abstraction level.

#include <cstddef>

#include "data/grid.hpp"

namespace mmir {

/// Multi-level 2-D Haar decomposition of a single-band raster.
class HaarWavelet2D {
 public:
  /// Decomposes `input` down `levels` times.  `levels` must leave at least a
  /// 1×1 approximation (it is clamped internally to the dyadic depth).
  HaarWavelet2D(const Grid& input, std::size_t levels);

  [[nodiscard]] std::size_t levels() const noexcept { return levels_; }
  [[nodiscard]] std::size_t original_width() const noexcept { return original_width_; }
  [[nodiscard]] std::size_t original_height() const noexcept { return original_height_; }

  /// Approximation raster at the given level (level 0 = original scale).
  /// Values are rescaled to local means, i.e. directly comparable with the
  /// original data range.
  [[nodiscard]] Grid approximation(std::size_t level) const;

  /// Sum of squared detail coefficients (H+V+D subbands) at a level in
  /// [1, levels]; a scale-selective roughness measure.
  [[nodiscard]] double detail_energy(std::size_t level) const;

  /// Inverse transform back to the original raster (exact up to FP error).
  [[nodiscard]] Grid reconstruct() const;

  /// Raw coefficient plane (approximation quadrant top-left, then detail
  /// quadrants per level, standard Mallat layout) — exposed for tests.
  [[nodiscard]] const Grid& coefficients() const noexcept { return coeff_; }

 private:
  [[nodiscard]] std::size_t level_size(std::size_t level) const noexcept {
    return padded_ >> level;
  }

  std::size_t original_width_ = 0;
  std::size_t original_height_ = 0;
  std::size_t padded_ = 0;  ///< dyadic square edge
  std::size_t levels_ = 0;
  Grid coeff_;
};

}  // namespace mmir
