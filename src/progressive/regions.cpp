#include "progressive/regions.hpp"

#include <algorithm>

namespace mmir {

const Region& Segmentation::region_at(std::size_t x, std::size_t y) const {
  const auto id = static_cast<std::size_t>(region_ids.at(x, y));
  MMIR_EXPECTS(id < regions.size());
  return regions[id];
}

Segmentation label_regions(const Grid& labels) {
  MMIR_EXPECTS(!labels.empty());
  const std::size_t width = labels.width();
  const std::size_t height = labels.height();
  Segmentation out{Grid(width, height, -1.0), {}};

  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (out.region_ids.cell(x, y) >= 0.0) continue;
      // Flood-fill a new region from (x, y).
      Region region;
      region.id = static_cast<std::uint32_t>(out.regions.size());
      region.label = labels.cell(x, y);
      region.min_x = region.max_x = x;
      region.min_y = region.max_y = y;
      double sum_x = 0.0;
      double sum_y = 0.0;
      stack.clear();
      stack.emplace_back(x, y);
      out.region_ids.cell(x, y) = static_cast<double>(region.id);
      while (!stack.empty()) {
        const auto [cx, cy] = stack.back();
        stack.pop_back();
        ++region.area;
        sum_x += static_cast<double>(cx);
        sum_y += static_cast<double>(cy);
        region.min_x = std::min(region.min_x, cx);
        region.max_x = std::max(region.max_x, cx);
        region.min_y = std::min(region.min_y, cy);
        region.max_y = std::max(region.max_y, cy);
        const long neighbors[4][2] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
        for (const auto& d : neighbors) {
          const long nx = static_cast<long>(cx) + d[0];
          const long ny = static_cast<long>(cy) + d[1];
          if (nx < 0 || ny < 0 || nx >= static_cast<long>(width) ||
              ny >= static_cast<long>(height))
            continue;
          const auto ux = static_cast<std::size_t>(nx);
          const auto uy = static_cast<std::size_t>(ny);
          if (out.region_ids.cell(ux, uy) >= 0.0) continue;
          if (labels.cell(ux, uy) != region.label) continue;
          out.region_ids.cell(ux, uy) = static_cast<double>(region.id);
          stack.emplace_back(ux, uy);
        }
      }
      region.centroid_x = sum_x / static_cast<double>(region.area);
      region.centroid_y = sum_y / static_cast<double>(region.area);
      out.regions.push_back(region);
    }
  }
  return out;
}

std::vector<Region> regions_of_class(const Segmentation& segmentation, double label,
                                     std::size_t min_area) {
  std::vector<Region> out;
  for (const Region& region : segmentation.regions) {
    if (region.label == label && region.area >= min_area) out.push_back(region);
  }
  std::sort(out.begin(), out.end(), [](const Region& a, const Region& b) {
    if (a.area != b.area) return a.area > b.area;
    return a.id < b.id;
  });
  return out;
}

}  // namespace mmir
