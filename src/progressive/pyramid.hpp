#pragma once
// Resolution pyramids: the concrete multi-resolution representation used by
// the progressive executors.
//
// Level 0 is the full-resolution raster; each level above halves both axes by
// mean pooling (equivalent to the Haar approximation up to scaling, but kept
// in data units so models evaluate unchanged at any level).  A coarse cell at
// level L covers a 2^L × 2^L block of base pixels, and the pyramid exposes
// that mapping so a screening pass at level L can enqueue base regions for
// refinement at level L-1.

#include <cstddef>
#include <vector>

#include "data/grid.hpp"

namespace mmir {

/// Axis-aligned region of base-resolution pixels.
struct PixelRegion {
  std::size_t x0 = 0;
  std::size_t y0 = 0;
  std::size_t width = 0;
  std::size_t height = 0;

  [[nodiscard]] std::size_t area() const noexcept { return width * height; }
};

/// Mean-pooled resolution pyramid over one band.
class ResolutionPyramid {
 public:
  /// Builds `levels` levels including the base (levels >= 1).  Construction
  /// stops early when a level degenerates to 1×1.
  ResolutionPyramid(const Grid& base, std::size_t levels);

  [[nodiscard]] std::size_t levels() const noexcept { return grids_.size(); }
  [[nodiscard]] const Grid& level(std::size_t l) const {
    MMIR_EXPECTS(l < grids_.size());
    return grids_[l];
  }

  /// Base-resolution region covered by cell (x, y) of level `l` (clipped to
  /// the base extent).
  [[nodiscard]] PixelRegion base_region(std::size_t l, std::size_t x, std::size_t y) const;

  /// Number of cells at level `l`.
  [[nodiscard]] std::size_t cell_count(std::size_t l) const {
    MMIR_EXPECTS(l < grids_.size());
    return grids_[l].size();
  }

 private:
  std::vector<Grid> grids_;
};

/// Co-registered pyramids over several bands (all bands share dimensions).
class MultiBandPyramid {
 public:
  MultiBandPyramid(const std::vector<const Grid*>& bands, std::size_t levels);

  [[nodiscard]] std::size_t band_count() const noexcept { return pyramids_.size(); }
  [[nodiscard]] std::size_t levels() const noexcept {
    return pyramids_.empty() ? 0 : pyramids_.front().levels();
  }
  [[nodiscard]] const ResolutionPyramid& band(std::size_t b) const {
    MMIR_EXPECTS(b < pyramids_.size());
    return pyramids_[b];
  }

 private:
  std::vector<ResolutionPyramid> pyramids_;
};

}  // namespace mmir
