#include "progressive/features.hpp"

#include <algorithm>
#include <cmath>

namespace mmir {

double TextureDescriptor::coarse_distance(const TextureDescriptor& other) const noexcept {
  const double dm = mean - other.mean;
  const double dv = variance - other.variance;
  return std::sqrt(dm * dm + dv * dv);
}

double TextureDescriptor::full_distance(const TextureDescriptor& other) const noexcept {
  const double dm = mean - other.mean;
  const double dv = variance - other.variance;
  const double dh = edge_h - other.edge_h;
  const double dvv = edge_v - other.edge_v;
  const double dd = edge_d - other.edge_d;
  return std::sqrt(dm * dm + dv * dv + dh * dh + dvv * dvv + dd * dd);
}

TextureDescriptor extract_texture(const Grid& grid, std::size_t x0, std::size_t y0, std::size_t w,
                                  std::size_t h, CostMeter& meter) {
  MMIR_EXPECTS(w > 0 && h > 0);
  const std::size_t x1 = std::min(x0 + w, grid.width());
  const std::size_t y1 = std::min(y0 + h, grid.height());
  MMIR_EXPECTS(x0 < x1 && y0 < y1);

  OnlineStats stats;
  double sum_h = 0.0;
  double sum_v = 0.0;
  double sum_d = 0.0;
  std::size_t gradient_samples = 0;
  for (std::size_t y = y0; y < y1; ++y) {
    for (std::size_t x = x0; x < x1; ++x) {
      const double v = grid.cell(x, y);
      stats.add(v);
      if (x + 1 < x1 && y + 1 < y1) {
        sum_h += std::abs(grid.cell(x + 1, y) - v);
        sum_v += std::abs(grid.cell(x, y + 1) - v);
        sum_d += std::abs(grid.cell(x + 1, y + 1) - v);
        ++gradient_samples;
      }
    }
  }
  meter.add_points((x1 - x0) * (y1 - y0));
  meter.add_ops(4 * (x1 - x0) * (y1 - y0));

  TextureDescriptor d;
  d.mean = stats.mean();
  d.variance = stats.variance();
  if (gradient_samples > 0) {
    d.edge_h = sum_h / static_cast<double>(gradient_samples);
    d.edge_v = sum_v / static_cast<double>(gradient_samples);
    d.edge_d = sum_d / static_cast<double>(gradient_samples);
  }
  return d;
}

TextureDescriptor extract_coarse_texture(const Grid& grid, std::size_t x0, std::size_t y0,
                                         std::size_t w, std::size_t h, CostMeter& meter) {
  MMIR_EXPECTS(w > 0 && h > 0);
  const std::size_t x1 = std::min(x0 + w, grid.width());
  const std::size_t y1 = std::min(y0 + h, grid.height());
  MMIR_EXPECTS(x0 < x1 && y0 < y1);
  OnlineStats stats;
  for (std::size_t y = y0; y < y1; ++y)
    for (std::size_t x = x0; x < x1; ++x) stats.add(grid.cell(x, y));
  meter.add_points((x1 - x0) * (y1 - y0));
  meter.add_ops((x1 - x0) * (y1 - y0));
  TextureDescriptor d;
  d.mean = stats.mean();
  d.variance = stats.variance();
  return d;
}

Grid iso_bands(const Grid& grid, std::size_t bands) {
  MMIR_EXPECTS(bands >= 2);
  const OnlineStats stats = grid.stats();
  const double span = std::max(stats.max() - stats.min(), 1e-12);
  Grid out(grid.width(), grid.height());
  for (std::size_t y = 0; y < grid.height(); ++y) {
    for (std::size_t x = 0; x < grid.width(); ++x) {
      const double t = (grid.cell(x, y) - stats.min()) / span;
      auto band = static_cast<std::size_t>(t * static_cast<double>(bands));
      if (band >= bands) band = bands - 1;
      out.cell(x, y) = static_cast<double>(band);
    }
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> cells_at_or_above(const Grid& banded,
                                                                   double min_band) {
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t y = 0; y < banded.height(); ++y) {
    for (std::size_t x = 0; x < banded.width(); ++x) {
      if (banded.cell(x, y) >= min_band) cells.emplace_back(x, y);
    }
  }
  return cells;
}

}  // namespace mmir
