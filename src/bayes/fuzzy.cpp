#include "bayes/fuzzy.hpp"

#include <algorithm>

namespace mmir {

Membership ramp_up(double lo, double hi) {
  MMIR_EXPECTS(hi > lo);
  return [lo, hi](double x) {
    if (x <= lo) return 0.0;
    if (x >= hi) return 1.0;
    return (x - lo) / (hi - lo);
  };
}

Membership ramp_down(double lo, double hi) {
  MMIR_EXPECTS(hi > lo);
  return [lo, hi](double x) {
    if (x <= lo) return 1.0;
    if (x >= hi) return 0.0;
    return (hi - x) / (hi - lo);
  };
}

Membership triangular(double lo, double peak, double hi) {
  MMIR_EXPECTS(lo < peak && peak < hi);
  return [lo, peak, hi](double x) {
    if (x <= lo || x >= hi) return 0.0;
    if (x <= peak) return (x - lo) / (peak - lo);
    return (hi - x) / (hi - peak);
  };
}

Membership trapezoid(double a, double b, double c, double d) {
  MMIR_EXPECTS(a < b && b <= c && c < d);
  return [a, b, c, d](double x) {
    if (x <= a || x >= d) return 0.0;
    if (x >= b && x <= c) return 1.0;
    if (x < b) return (x - a) / (b - a);
    return (d - x) / (d - c);
  };
}

Membership crisp_at_least(double threshold) {
  return [threshold](double x) { return x >= threshold ? 1.0 : 0.0; };
}

double fuzzy_and_min(double a, double b) noexcept { return std::min(a, b); }
double fuzzy_and_product(double a, double b) noexcept { return a * b; }
double fuzzy_or_max(double a, double b) noexcept { return std::max(a, b); }
double fuzzy_or_probsum(double a, double b) noexcept { return a + b - a * b; }
double fuzzy_not(double a) noexcept { return 1.0 - a; }

double fuzzy_all(const std::vector<double>& degrees) noexcept {
  double result = 1.0;
  for (double d : degrees) result = std::min(result, d);
  return result;
}

}  // namespace mmir
