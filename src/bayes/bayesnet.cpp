#include "bayes/bayesnet.hpp"

#include <algorithm>
#include <cmath>

namespace mmir {

std::size_t BayesNet::add_variable(std::string name, std::size_t cardinality,
                                   std::vector<std::size_t> parents) {
  MMIR_EXPECTS(cardinality >= 2);
  for (std::size_t p : parents) MMIR_EXPECTS(p < vars_.size());
  for (const auto& v : vars_) MMIR_EXPECTS(v.var_name != name);
  Variable var;
  var.var_name = std::move(name);
  var.card = cardinality;
  var.parent_ids = std::move(parents);
  vars_.push_back(std::move(var));
  const std::size_t id = vars_.size() - 1;
  // Uniform default CPT.
  vars_[id].table.assign(parent_config_count(id) * cardinality,
                         1.0 / static_cast<double>(cardinality));
  return id;
}

const std::string& BayesNet::name(std::size_t v) const {
  MMIR_EXPECTS(v < vars_.size());
  return vars_[v].var_name;
}

std::size_t BayesNet::cardinality(std::size_t v) const {
  MMIR_EXPECTS(v < vars_.size());
  return vars_[v].card;
}

std::span<const std::size_t> BayesNet::parents(std::size_t v) const {
  MMIR_EXPECTS(v < vars_.size());
  return vars_[v].parent_ids;
}

std::size_t BayesNet::find(std::string_view name) const {
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    if (vars_[v].var_name == name) return v;
  }
  throw Error("BayesNet::find: no variable named '" + std::string(name) + "'");
}

std::size_t BayesNet::parent_config_count(std::size_t v) const {
  std::size_t count = 1;
  for (std::size_t p : vars_[v].parent_ids) count *= vars_[p].card;
  return count;
}

std::size_t BayesNet::parent_index(std::size_t v,
                                   std::span<const std::size_t> parent_values) const {
  MMIR_EXPECTS(parent_values.size() == vars_[v].parent_ids.size());
  std::size_t index = 0;
  for (std::size_t i = 0; i < parent_values.size(); ++i) {
    const std::size_t parent_card = vars_[vars_[v].parent_ids[i]].card;
    MMIR_EXPECTS(parent_values[i] < parent_card);
    index = index * parent_card + parent_values[i];
  }
  return index;
}

void BayesNet::set_cpt(std::size_t v, std::vector<double> table) {
  MMIR_EXPECTS(v < vars_.size());
  const std::size_t expected = parent_config_count(v) * vars_[v].card;
  MMIR_EXPECTS(table.size() == expected);
  for (std::size_t row = 0; row < table.size(); row += vars_[v].card) {
    double sum = 0.0;
    for (std::size_t c = 0; c < vars_[v].card; ++c) {
      MMIR_EXPECTS(table[row + c] >= 0.0);
      sum += table[row + c];
    }
    if (std::abs(sum - 1.0) > 1e-6) {
      throw Error("BayesNet::set_cpt: CPT row does not sum to 1 for '" + vars_[v].var_name + "'");
    }
  }
  vars_[v].table = std::move(table);
}

double BayesNet::cpt(std::size_t v, std::span<const std::size_t> parent_values,
                     std::size_t value) const {
  MMIR_EXPECTS(v < vars_.size());
  MMIR_EXPECTS(value < vars_[v].card);
  return vars_[v].table[parent_index(v, parent_values) * vars_[v].card + value];
}

double BayesNet::joint(std::span<const std::size_t> assignment) const {
  MMIR_EXPECTS(assignment.size() == vars_.size());
  double p = 1.0;
  std::vector<std::size_t> parent_values;
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    parent_values.clear();
    for (std::size_t pid : vars_[v].parent_ids) parent_values.push_back(assignment[pid]);
    p *= cpt(v, parent_values, assignment[v]);
  }
  return p;
}

namespace {

/// Multi-variable factor for variable elimination.
struct Factor {
  std::vector<std::size_t> vars;   // variable ids, ascending
  std::vector<std::size_t> cards;  // matching cardinalities
  std::vector<double> values;      // row-major over vars

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
};

/// Index of an assignment (values addressed by global variable id).
std::size_t factor_index(const Factor& f, std::span<const std::size_t> full_assignment) {
  std::size_t index = 0;
  for (std::size_t i = 0; i < f.vars.size(); ++i) {
    index = index * f.cards[i] + full_assignment[f.vars[i]];
  }
  return index;
}

/// Iterates all assignments of a factor's variables, invoking fn(assignment).
template <typename Fn>
void for_each_assignment(const Factor& f, std::vector<std::size_t>& full_assignment, Fn&& fn) {
  const std::size_t total = f.values.size();
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t rest = code;
    for (std::size_t i = f.vars.size(); i-- > 0;) {
      full_assignment[f.vars[i]] = rest % f.cards[i];
      rest /= f.cards[i];
    }
    fn();
  }
}

Factor product(const Factor& a, const Factor& b, std::size_t var_total, CostMeter& meter) {
  Factor out;
  out.vars.reserve(a.vars.size() + b.vars.size());
  std::merge(a.vars.begin(), a.vars.end(), b.vars.begin(), b.vars.end(),
             std::back_inserter(out.vars));
  out.vars.erase(std::unique(out.vars.begin(), out.vars.end()), out.vars.end());
  std::size_t total = 1;
  for (std::size_t v : out.vars) {
    // Cardinality from whichever operand carries the variable.
    const auto ia = std::find(a.vars.begin(), a.vars.end(), v);
    const std::size_t card = ia != a.vars.end()
                                 ? a.cards[static_cast<std::size_t>(ia - a.vars.begin())]
                                 : b.cards[static_cast<std::size_t>(
                                       std::find(b.vars.begin(), b.vars.end(), v) - b.vars.begin())];
    out.cards.push_back(card);
    total *= card;
  }
  out.values.assign(total, 0.0);
  std::vector<std::size_t> assignment(var_total, 0);
  for_each_assignment(out, assignment, [&] {
    out.values[factor_index(out, assignment)] =
        a.values[factor_index(a, assignment)] * b.values[factor_index(b, assignment)];
  });
  meter.add_ops(total);
  return out;
}

Factor marginalize(const Factor& f, std::size_t var, std::size_t var_total, CostMeter& meter) {
  Factor out;
  for (std::size_t i = 0; i < f.vars.size(); ++i) {
    if (f.vars[i] != var) {
      out.vars.push_back(f.vars[i]);
      out.cards.push_back(f.cards[i]);
    }
  }
  std::size_t total = 1;
  for (std::size_t c : out.cards) total *= c;
  out.values.assign(total, 0.0);
  std::vector<std::size_t> assignment(var_total, 0);
  for_each_assignment(f, assignment, [&] {
    out.values[factor_index(out, assignment)] += f.values[factor_index(f, assignment)];
  });
  meter.add_ops(f.size());
  return out;
}

/// Restricts a factor to the evidence (drops evidence variables).
Factor reduce(const Factor& f, const std::map<std::size_t, std::size_t>& evidence,
              std::size_t var_total) {
  Factor out;
  bool any_evidence = false;
  for (std::size_t i = 0; i < f.vars.size(); ++i) {
    if (evidence.count(f.vars[i]) != 0) {
      any_evidence = true;
    } else {
      out.vars.push_back(f.vars[i]);
      out.cards.push_back(f.cards[i]);
    }
  }
  if (!any_evidence) return f;
  std::size_t total = 1;
  for (std::size_t c : out.cards) total *= c;
  out.values.assign(total, 0.0);
  std::vector<std::size_t> assignment(var_total, 0);
  for (const auto& [v, value] : evidence) assignment[v] = value;
  for_each_assignment(out, assignment, [&] {
    out.values[factor_index(out, assignment)] = f.values[factor_index(f, assignment)];
  });
  return out;
}

}  // namespace

std::vector<double> BayesNet::posterior(std::size_t query,
                                        const std::map<std::size_t, std::size_t>& evidence,
                                        CostMeter& meter) const {
  MMIR_EXPECTS(query < vars_.size());
  MMIR_EXPECTS(evidence.count(query) == 0);
  for (const auto& [v, value] : evidence) {
    MMIR_EXPECTS(v < vars_.size());
    MMIR_EXPECTS(value < vars_[v].card);
  }
  ScopedTimer timer(meter);
  const std::size_t var_total = vars_.size();

  // One factor per CPT, reduced by evidence.
  std::vector<Factor> factors;
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    Factor f;
    f.vars = vars_[v].parent_ids;
    f.vars.push_back(v);
    std::sort(f.vars.begin(), f.vars.end());
    f.cards.reserve(f.vars.size());
    for (std::size_t fv : f.vars) f.cards.push_back(vars_[fv].card);
    std::size_t total = 1;
    for (std::size_t c : f.cards) total *= c;
    f.values.assign(total, 0.0);
    std::vector<std::size_t> assignment(var_total, 0);
    std::vector<std::size_t> parent_values;
    for_each_assignment(f, assignment, [&] {
      parent_values.clear();
      for (std::size_t pid : vars_[v].parent_ids) parent_values.push_back(assignment[pid]);
      f.values[factor_index(f, assignment)] = cpt(v, parent_values, assignment[v]);
    });
    factors.push_back(reduce(f, evidence, var_total));
  }

  // Eliminate every non-query, non-evidence variable (declaration order).
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    if (v == query || evidence.count(v) != 0) continue;
    Factor combined;
    combined.values = {1.0};
    std::vector<Factor> remaining;
    for (auto& f : factors) {
      if (std::find(f.vars.begin(), f.vars.end(), v) != f.vars.end()) {
        combined = product(combined, f, var_total, meter);
      } else {
        remaining.push_back(std::move(f));
      }
    }
    remaining.push_back(marginalize(combined, v, var_total, meter));
    factors = std::move(remaining);
  }

  // Multiply what is left (factors over the query variable only).
  Factor result;
  result.values = {1.0};
  for (const auto& f : factors) result = product(result, f, var_total, meter);

  std::vector<double> posterior(vars_[query].card, 0.0);
  if (result.vars.empty()) {
    // Query was disconnected given the evidence: fall back to its prior
    // weighting (uniform over values of a normalized empty product).
    std::fill(posterior.begin(), posterior.end(), result.values[0]);
  } else {
    MMIR_ENSURES(result.vars.size() == 1 && result.vars[0] == query);
    posterior = result.values;
  }
  double z = 0.0;
  for (double p : posterior) z += p;
  if (z <= 0.0) throw Error("BayesNet::posterior: evidence has zero probability");
  for (double& p : posterior) p /= z;
  return posterior;
}

std::vector<std::size_t> BayesNet::sample(Rng& rng) const {
  std::vector<std::size_t> assignment(vars_.size(), 0);
  std::vector<std::size_t> parent_values;
  std::vector<double> dist;
  for (std::size_t v = 0; v < vars_.size(); ++v) {
    parent_values.clear();
    for (std::size_t pid : vars_[v].parent_ids) parent_values.push_back(assignment[pid]);
    dist.clear();
    for (std::size_t value = 0; value < vars_[v].card; ++value) {
      dist.push_back(cpt(v, parent_values, value));
    }
    assignment[v] = rng.categorical(dist);
  }
  return assignment;
}

void BayesNet::fit(std::span<const std::vector<std::size_t>> rows, double alpha) {
  MMIR_EXPECTS(alpha > 0.0);
  for (auto& var : vars_) {
    std::fill(var.table.begin(), var.table.end(), alpha);
  }
  std::vector<std::size_t> parent_values;
  for (const auto& row : rows) {
    MMIR_EXPECTS(row.size() == vars_.size());
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      MMIR_EXPECTS(row[v] < vars_[v].card);
      parent_values.clear();
      for (std::size_t pid : vars_[v].parent_ids) parent_values.push_back(row[pid]);
      vars_[v].table[parent_index(v, parent_values) * vars_[v].card + row[v]] += 1.0;
    }
  }
  // Normalize each CPT row.
  for (auto& var : vars_) {
    for (std::size_t row = 0; row < var.table.size(); row += var.card) {
      double sum = 0.0;
      for (std::size_t c = 0; c < var.card; ++c) sum += var.table[row + c];
      for (std::size_t c = 0; c < var.card; ++c) var.table[row + c] /= sum;
    }
  }
}

}  // namespace mmir
