#pragma once
// Discrete Bayesian networks (paper §2.3): "a graphical model for
// probabilistic relationships among a set of variables … a popular
// representation for encoding expert knowledge in expert systems.  Recently,
// methods have been developed to learn Bayesian networks from data."
//
// This module supplies all three capabilities the paper leans on:
//  * representation — DAG of discrete variables with CPTs;
//  * inference      — exact posterior by variable elimination, so knowledge
//                     models can rank locations by P(high risk | evidence);
//  * learning       — CPT estimation from complete data with Dirichlet
//                     smoothing (and ancestral sampling to generate data).

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/cost.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mmir {

/// Discrete Bayesian network.  Variables are added parents-first (parent ids
/// must already exist), which guarantees acyclicity by construction.
class BayesNet {
 public:
  /// Adds a variable with the given cardinality and parent set; returns its
  /// id.  The CPT is initialized to uniform.
  std::size_t add_variable(std::string name, std::size_t cardinality,
                           std::vector<std::size_t> parents = {});

  [[nodiscard]] std::size_t variable_count() const noexcept { return vars_.size(); }
  [[nodiscard]] const std::string& name(std::size_t v) const;
  [[nodiscard]] std::size_t cardinality(std::size_t v) const;
  [[nodiscard]] std::span<const std::size_t> parents(std::size_t v) const;
  /// Id of the variable with the given name; throws when absent.
  [[nodiscard]] std::size_t find(std::string_view name) const;

  /// Sets the full CPT for `v`.  Layout: for each parent assignment (parents
  /// in declaration order, row-major), `cardinality(v)` probabilities that
  /// must each sum to 1 (validated within 1e-6).
  void set_cpt(std::size_t v, std::vector<double> table);

  /// P(v = value | parents = parent_values).
  [[nodiscard]] double cpt(std::size_t v, std::span<const std::size_t> parent_values,
                           std::size_t value) const;

  /// Joint probability of a complete assignment (one value per variable).
  [[nodiscard]] double joint(std::span<const std::size_t> assignment) const;

  /// Exact posterior P(query | evidence) by variable elimination.
  /// Returns a distribution over the query variable's values.  Charges the
  /// meter one op per factor-table entry touched (the model-execution cost
  /// that progressive evaluation tries to avoid).
  [[nodiscard]] std::vector<double> posterior(std::size_t query,
                                              const std::map<std::size_t, std::size_t>& evidence,
                                              CostMeter& meter) const;

  /// Ancestral sample of all variables (topological = declaration order).
  [[nodiscard]] std::vector<std::size_t> sample(Rng& rng) const;

  /// Fits every CPT from complete-data rows (each row: one value per
  /// variable) with Dirichlet-style additive smoothing `alpha`.
  void fit(std::span<const std::vector<std::size_t>> rows, double alpha = 1.0);

 private:
  struct Variable {
    std::string var_name;
    std::size_t card = 0;
    std::vector<std::size_t> parent_ids;
    std::vector<double> table;
  };

  [[nodiscard]] std::size_t parent_config_count(std::size_t v) const;
  [[nodiscard]] std::size_t parent_index(std::size_t v,
                                         std::span<const std::size_t> parent_values) const;

  std::vector<Variable> vars_;
};

}  // namespace mmir
