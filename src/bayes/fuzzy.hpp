#pragma once
// Fuzzy memberships and connectives (paper §3: knowledge models "locate the
// top-K data patterns that satisfy the fuzzy and/or probabilistic rules
// specified within the model").
//
// Knowledge-model predicates like "gamma ray higher than 45" or "thick
// sandstone" are soft: a layer at 44.5 API should score nearly as well as one
// at 45.5.  Membership functions map raw attribute values to [0, 1] degrees;
// connectives combine them.  SPROC consumes these degrees as component
// scores.

#include <functional>
#include <vector>

#include "util/error.hpp"

namespace mmir {

/// A membership function: attribute value -> degree in [0, 1].
using Membership = std::function<double(double)>;

/// 1 above `hi`, 0 below `lo`, linear ramp between (a soft ">= threshold").
[[nodiscard]] Membership ramp_up(double lo, double hi);

/// 1 below `lo`, 0 above `hi`, linear ramp between (a soft "<= threshold").
[[nodiscard]] Membership ramp_down(double lo, double hi);

/// Classic triangular membership peaking at `peak`.
[[nodiscard]] Membership triangular(double lo, double peak, double hi);

/// Trapezoidal membership: ramps up on [a,b], flat 1 on [b,c], down on [c,d].
[[nodiscard]] Membership trapezoid(double a, double b, double c, double d);

/// Crisp threshold (degree 0 or 1) — the degenerate case used by baselines.
[[nodiscard]] Membership crisp_at_least(double threshold);

// Connectives.  Both a t-norm pair (min/max — Zadeh) and a product pair
// (product / probabilistic sum) are provided; knowledge models pick one.
[[nodiscard]] double fuzzy_and_min(double a, double b) noexcept;
[[nodiscard]] double fuzzy_and_product(double a, double b) noexcept;
[[nodiscard]] double fuzzy_or_max(double a, double b) noexcept;
[[nodiscard]] double fuzzy_or_probsum(double a, double b) noexcept;
[[nodiscard]] double fuzzy_not(double a) noexcept;

/// Folds a set of degrees with the min t-norm (empty -> 1).
[[nodiscard]] double fuzzy_all(const std::vector<double>& degrees) noexcept;

}  // namespace mmir
