#include "net/shard_server.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "core/raster_model.hpp"
#include "linear/model.hpp"
#include "linear/progressive.hpp"
#include "util/error.hpp"

namespace mmir::net {

namespace {

Frame error_frame(std::uint32_t code, std::string message) {
  WireErrorMsg msg;
  msg.code = code;
  msg.message = std::move(message);
  return Frame{MsgType::kError, encode_error(msg)};
}

}  // namespace

ShardServer::ShardServer(ShardServerConfig config)
    : config_(std::move(config)), engine_([this] {
        if (config_.engine.tracer == nullptr) config_.engine.tracer = &tracer_;
        return config_.engine;
      }()) {}

ShardServer::~ShardServer() { stop(); }

void ShardServer::register_archive(std::uint64_t archive_id, const TiledArchive* archive,
                                   std::vector<Interval> progressive_ranges) {
  MMIR_EXPECTS(archive != nullptr);
  const std::lock_guard<std::mutex> lock(archives_mutex_);
  ArchiveEntry& entry = archives_[archive_id];
  entry.archive = archive;
  entry.ranges = std::move(progressive_ranges);
  entry.layouts.clear();
}

bool ShardServer::start() {
  stop();
  if (!listener_.listen(config_.port)) return false;
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void ShardServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_connections(/*all=*/true);
  listener_.close();
}

bool ShardServer::running() const noexcept { return !stop_.load(std::memory_order_acquire); }

int ShardServer::port() const noexcept { return listener_.port(); }

std::uint64_t ShardServer::queries_served() const noexcept {
  return queries_served_.load(std::memory_order_relaxed);
}

const ShardedArchive* ShardServer::layout_for(ArchiveEntry& entry, std::uint32_t count,
                                              std::uint8_t policy) {
  const auto key = std::make_pair(count, policy);
  const auto it = entry.layouts.find(key);
  if (it != entry.layouts.end()) return it->second.get();
  auto layout = std::make_unique<ShardedArchive>(*entry.archive, count,
                                                 static_cast<ShardPolicy>(policy));
  const ShardedArchive* raw = layout.get();
  entry.layouts.emplace(key, std::move(layout));
  return raw;
}

Frame ShardServer::handle(const Frame& request) {
  switch (request.type) {
    case MsgType::kPing:
      return Frame{MsgType::kPong, {}};
    case MsgType::kQuery:
      return handle_query(request.payload);
    case MsgType::kDescribe:
      return handle_describe(request.payload);
    case MsgType::kStats:
      return handle_stats();
    default:
      return error_frame(kErrBadRequest, "unexpected message type");
  }
}

Frame ShardServer::handle_query(std::span<const std::uint8_t> payload) {
  // s_recv for the router's clock-offset sample: steady-clock time at which
  // this process took ownership of the request.
  const std::uint64_t recv_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  QuerySpec spec;
  try {
    spec = decode_query(payload);
  } catch (const WireError& err) {
    return error_frame(kErrBadRequest, err.what());
  }
  if (config_.shard_id != kAnyShard && spec.shard_id != config_.shard_id) {
    return error_frame(kErrBadRequest, "shard not served by this process");
  }
  try {
    const ShardedArchive* sharded = nullptr;
    std::vector<Interval> ranges;
    {
      const std::lock_guard<std::mutex> lock(archives_mutex_);
      const auto it = archives_.find(spec.archive_id);
      if (it == archives_.end()) return error_frame(kErrUnknownArchive, "archive not registered");
      ArchiveEntry& entry = it->second;
      if (spec.weights.size() != entry.archive->band_count()) {
        return error_frame(kErrBadRequest, "weight count != band count");
      }
      sharded = layout_for(entry, spec.shard_count, spec.shard_policy);
      ranges = entry.ranges;
    }
    if (spec.names.size() != spec.weights.size()) {
      return error_frame(kErrBadRequest, "name count != weight count");
    }

    const auto mode = static_cast<ShardScanMode>(spec.mode);
    const bool model_leg =
        mode == ShardScanMode::kProgressiveModel || mode == ShardScanMode::kCombined;
    const LinearModel linear(spec.weights, spec.bias, spec.names);
    const LinearRasterModel raster(linear);
    std::optional<ProgressiveLinearModel> progressive;
    if (model_leg) {
      if (ranges.size() != spec.weights.size()) {
        return error_frame(kErrBadRequest, "no registered ranges for progressive mode");
      }
      progressive.emplace(linear, std::move(ranges));
    }

    ShardScanJob job;
    job.mode = mode;
    job.sharded = sharded;
    job.shard_id = spec.shard_id;
    job.model = model_leg ? nullptr : &raster;
    job.progressive = model_leg ? &*progressive : nullptr;
    job.k = spec.k;
    job.limits.op_budget = spec.op_budget;
    if (spec.timeout_ns > 0) job.limits.timeout = std::chrono::nanoseconds(spec.timeout_ns);
    ShardScanOutcome outcome = engine_.submit(job).get();

    WirePartial reply;
    reply.query_id = spec.query_id;
    reply.partial = std::move(outcome.result.partial);
    // A shed scan never ran, so its partial carries the default shard id;
    // stamp the requested one so the router's sanity check holds.
    reply.partial.shard_id = spec.shard_id;
    reply.meter_points = outcome.meter.points();
    reply.meter_ops = outcome.meter.ops();
    reply.meter_bytes = outcome.meter.bytes();
    reply.meter_pruned = outcome.meter.pruned();
    reply.scan_ops = outcome.result.scan_ops;
    reply.model_terms = outcome.result.model_terms;
    // Traced request + traced engine: ship the span tree and the monotonic
    // timestamps the router's stitcher needs.  An untraced request (or a v1
    // router) costs nothing extra on the wire.
    if (spec.trace_id != 0 && outcome.trace != nullptr) {
      reply.has_trace = true;
      reply.trace.remote_trace_id = outcome.trace->id();
      reply.trace.trace_start_ns = outcome.trace->start_epoch_ns();
      reply.trace.queue_wait_ns = static_cast<std::uint64_t>(outcome.queue_wait.count());
      reply.trace.exec_ns = static_cast<std::uint64_t>(outcome.exec_time.count());
      const std::vector<obs::SpanRecord> spans = outcome.trace->spans();
      const std::size_t n = std::min<std::size_t>(spans.size(), kMaxWireSpans);
      reply.trace.spans.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const obs::SpanRecord& record = spans[i];
        WireSpan span;
        span.name = record.name;
        span.parent = record.parent == obs::kNoSpan || record.parent >= n
                          ? kWireNoParent
                          : static_cast<std::uint32_t>(record.parent);
        span.start_ns = record.start_ns;
        span.duration_ns = record.duration_ns;
        span.attrs = record.attrs;
        span.notes = record.notes;
        reply.trace.spans.push_back(std::move(span));
      }
      reply.trace.server_recv_ns = recv_ns;
      reply.trace.server_send_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    }
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    return Frame{MsgType::kResult, encode_partial(reply)};
  } catch (const Error& err) {
    return error_frame(kErrBadRequest, err.what());
  } catch (const std::exception& err) {
    return error_frame(kErrInternal, err.what());
  }
}

Frame ShardServer::handle_describe(std::span<const std::uint8_t> payload) {
  DescribeSpec spec;
  try {
    spec = decode_describe(payload);
  } catch (const WireError& err) {
    return error_frame(kErrBadRequest, err.what());
  }
  ShardDescription info;
  try {
    const std::lock_guard<std::mutex> lock(archives_mutex_);
    const auto it = archives_.find(spec.archive_id);
    if (it != archives_.end() && spec.shard_count > 0 && spec.shard_id < spec.shard_count &&
        spec.shard_policy <= static_cast<std::uint8_t>(ShardPolicy::kTileHash)) {
      const ShardedArchive* sharded =
          layout_for(it->second, spec.shard_count, spec.shard_policy);
      const ShardInfo& shard = sharded->shard(spec.shard_id);
      info.known = true;
      info.pixel_count = shard.pixel_count;
      info.tile_count = shard.tiles.size();
      info.archive_pixels = it->second.archive->pixel_count();
      info.band_ranges = shard.band_ranges;
    }
  } catch (const std::exception&) {
    info = ShardDescription{};
  }
  return Frame{MsgType::kShardInfo, encode_shard_info(info)};
}

Frame ShardServer::handle_stats() {
  WireStats stats;
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.uptime_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           started_at_)
          .count());
  if (config_.engine.metrics != nullptr) stats.snapshot = config_.engine.metrics->snapshot();
  return Frame{MsgType::kStatsReply, encode_stats(stats)};
}

void ShardServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    reap_connections(/*all=*/false);
    Socket client = listener_.accept(std::chrono::milliseconds(100));
    if (!client.valid()) continue;
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    {
      const std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread(
        [this, raw](Socket sock) { serve_connection(std::move(sock), raw); }, std::move(client));
  }
}

void ShardServer::serve_connection(Socket sock, Conn* conn) {
  while (!stop_.load(std::memory_order_acquire)) {
    Frame request;
    try {
      request = read_frame(sock, config_.read_timeout, &stop_);
    } catch (const WireError& err) {
      if (err.fault() != WireFault::kClosed) {
        // Hostile or corrupt frame: answer with a typed error, then drop the
        // connection — the byte stream is desynced past recovery.  The
        // server itself keeps serving.
        const Frame reply = error_frame(kErrBadRequest, err.what());
        (void)write_frame(sock, reply.type, reply.payload);
      }
      break;
    }
    const Frame reply = handle(request);
    if (!write_frame(sock, reply.type, reply.payload)) break;
  }
  conn->done.store(true, std::memory_order_release);
}

void ShardServer::reap_connections(bool all) {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    if (all) {
      finished.swap(conns_);
    } else {
      auto it = conns_.begin();
      while (it != conns_.end()) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

}  // namespace mmir::net
