#include "net/socket.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MMIR_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define MMIR_HAVE_SOCKETS 0
#endif

#include <algorithm>

namespace mmir::net {

bool sockets_available() noexcept { return MMIR_HAVE_SOCKETS != 0; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Listener::Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = -1;
  }
  return *this;
}

#if MMIR_HAVE_SOCKETS

namespace {

/// Slice length for deadline/cancel polling: short enough that stop flags
/// are prompt, long enough that an idle wait costs nothing measurable.
constexpr int kPollSliceMs = 100;

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Socket{};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Socket{};
  }
  return Socket{fd};
}

bool Socket::read_exact(void* buf, std::size_t n, std::chrono::milliseconds timeout,
                        const std::atomic<bool>* cancel) {
  if (fd_ < 0) return false;
  auto* out = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  const bool bounded = timeout.count() > 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (got < n) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return false;
    int wait_ms = kPollSliceMs;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;  // deadline elapsed
      wait_ms = static_cast<int>(std::min<long long>(left.count(), kPollSliceMs));
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) return false;
    if (ready == 0) continue;  // slice expired; re-check cancel/deadline
    const ssize_t r = ::read(fd_, out + got, n - got);
    if (r <= 0) return false;  // EOF or error
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::ptrdiff_t Socket::read_some(void* buf, std::size_t n) {
  if (fd_ < 0) return -1;
  return ::read(fd_, buf, n);
}

bool Socket::write_all(const void* buf, std::size_t n) {
  if (fd_ < 0) return false;
  const auto* bytes = static_cast<const unsigned char*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a peer that closed mid-write (a router cancelling a
    // hedged leg) must surface as a write error here, not as a SIGPIPE
    // that kills the whole server process.
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
#else
    const ssize_t w = ::write(fd_, bytes + sent, n - sent);
#endif
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool Listener::listen(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 16) != 0) {
    close();
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  } else {
    port_ = port;
  }
  return true;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = -1;
}

Socket Listener::accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return Socket{};
  pollfd pfd{fd_, POLLIN, 0};
  const int wait_ms = static_cast<int>(std::max<long long>(0, timeout.count()));
  const int ready = ::poll(&pfd, 1, wait_ms);
  if (ready <= 0 || (pfd.revents & POLLIN) == 0) return Socket{};
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return Socket{};
  return Socket{client};
}

#else  // !MMIR_HAVE_SOCKETS

void Socket::close() noexcept { fd_ = -1; }
Socket Socket::connect_loopback(std::uint16_t) { return Socket{}; }
bool Socket::read_exact(void*, std::size_t, std::chrono::milliseconds,
                        const std::atomic<bool>*) {
  return false;
}
std::ptrdiff_t Socket::read_some(void*, std::size_t) { return -1; }
bool Socket::write_all(const void*, std::size_t) { return false; }
bool Listener::listen(std::uint16_t) { return false; }
void Listener::close() noexcept {
  fd_ = -1;
  port_ = -1;
}
Socket Listener::accept(std::chrono::milliseconds) { return Socket{}; }

#endif

}  // namespace mmir::net
