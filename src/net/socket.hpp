#pragma once
// Blocking loopback TCP primitives shared by every in-process network
// surface: the operator stats server (obs/stats_server) and the shard
// serving plane (net/shard_server, net/router).  Promoted out of
// obs/stats_server.cpp so SO_REUSEADDR, ephemeral-port readback, and
// partial-read/partial-write handling live in exactly one place.
//
// Design points:
//   * loopback only — every bind and connect targets 127.0.0.1; this layer
//     serves co-located processes, not the open internet.
//   * Listener::accept() polls with a bounded timeout and returns an invalid
//     Socket on expiry, so accept loops re-check their stop flag promptly
//     without signals or shutdown() races (the stats-server pattern).
//   * Socket::read_exact() takes a deadline plus an optional cancel flag and
//     polls in short slices — a hung peer costs the caller its timeout, never
//     a wedged thread.  This is what lets a router leg treat a dead shard
//     server as a fault-domain event instead of a hang.
//   * On platforms without BSD sockets every operation reports failure
//     (start returns false, reads/writes fail); nothing references the API
//     conditionally, so callers need no #ifdefs.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace mmir::net {

/// True when the platform provides BSD sockets (compile-time property).
[[nodiscard]] bool sockets_available() noexcept;

/// RAII wrapper over one connected TCP socket.  Move-only; closes on
/// destruction.  A default-constructed Socket is invalid.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Connects to 127.0.0.1:`port`; invalid Socket on failure.
  [[nodiscard]] static Socket connect_loopback(std::uint16_t port);

  /// Reads exactly `n` bytes.  Polls in short slices so the optional
  /// `cancel` flag and the deadline (now + `timeout`) are honored even when
  /// the peer stays silent; `timeout` <= 0 means no deadline.  Returns false
  /// on EOF, error, timeout, or cancellation.
  [[nodiscard]] bool read_exact(void* buf, std::size_t n, std::chrono::milliseconds timeout,
                                const std::atomic<bool>* cancel = nullptr);

  /// One read(2) of at most `n` bytes; returns the byte count, 0 on EOF,
  /// -1 on error.  For protocols with their own head-scanning loop (HTTP).
  [[nodiscard]] std::ptrdiff_t read_some(void* buf, std::size_t n);

  /// Writes all `n` bytes, looping over partial writes; false on error.
  [[nodiscard]] bool write_all(const void* buf, std::size_t n);

 private:
  int fd_ = -1;
};

/// RAII loopback listener: SO_REUSEADDR, bind 127.0.0.1, listen(16), and
/// ephemeral-port readback via getsockname.
class Listener {
 public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned; read back via port()).
  /// Returns false when the socket can't be created/bound/listened.
  [[nodiscard]] bool listen(std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// The bound TCP port; -1 when not listening.
  [[nodiscard]] int port() const noexcept { return port_; }
  void close() noexcept;

  /// Waits up to `timeout` for a connection; an invalid Socket means the
  /// timeout elapsed (re-check your stop flag and call again) or an error.
  [[nodiscard]] Socket accept(std::chrono::milliseconds timeout);

 private:
  int fd_ = -1;
  int port_ = -1;
};

}  // namespace mmir::net
