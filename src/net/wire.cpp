#include "net/wire.hpp"

#include <cstring>

#include "util/fnv.hpp"

namespace mmir::net {

const char* to_string(WireFault fault) noexcept {
  switch (fault) {
    case WireFault::kNone: return "none";
    case WireFault::kClosed: return "closed";
    case WireFault::kTruncated: return "truncated";
    case WireFault::kBadMagic: return "bad-magic";
    case WireFault::kOversized: return "oversized";
    case WireFault::kVersionSkew: return "version-skew";
    case WireFault::kChecksumMismatch: return "checksum-mismatch";
    case WireFault::kMalformed: return "malformed";
  }
  return "unknown";
}

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw WireError(WireFault::kMalformed, "payload shorter than its fields claim");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::string WireReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
  pos_ += len;
  return out;
}

namespace {

bool known_type(std::uint16_t t) noexcept {
  return t >= static_cast<std::uint16_t>(MsgType::kQuery) &&
         t <= static_cast<std::uint16_t>(MsgType::kStatsReply);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Validates the 12-byte header; returns the advertised payload length.
std::uint32_t check_header(std::span<const std::uint8_t> head) {
  if (std::memcmp(head.data(), kWireMagic, sizeof kWireMagic) != 0) {
    throw WireError(WireFault::kBadMagic, "frame does not start with MMW1");
  }
  const std::uint16_t version = get_u16(head.data() + 4);
  if (version < kWireMinVersion || version > kWireVersion) {
    throw WireError(WireFault::kVersionSkew,
                    "peer speaks protocol version " + std::to_string(version) +
                        ", this build speaks " + std::to_string(kWireMinVersion) + ".." +
                        std::to_string(kWireVersion));
  }
  const std::uint32_t len = get_u32(head.data() + 8);
  if (len > kMaxFramePayload) {
    throw WireError(WireFault::kOversized,
                    "length prefix " + std::to_string(len) + " exceeds the " +
                        std::to_string(kMaxFramePayload) + "-byte cap");
  }
  return len;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(MsgType type, std::span<const std::uint8_t> payload,
                                       std::uint16_t version) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  out.insert(out.end(), kWireMagic, kWireMagic + sizeof kWireMagic);
  put_u16(out, version);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, fnv1a(payload.data(), payload.size()));
  return out;
}

Frame decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    throw WireError(WireFault::kTruncated, "frame shorter than its header");
  }
  const std::uint32_t len = check_header(bytes.first(kFrameHeaderBytes));
  const std::uint16_t raw_type = get_u16(bytes.data() + 6);
  if (!known_type(raw_type)) {
    throw WireError(WireFault::kMalformed,
                    "unknown message type " + std::to_string(raw_type));
  }
  if (bytes.size() < kFrameHeaderBytes + len + kFrameTrailerBytes) {
    throw WireError(WireFault::kTruncated, "frame ends before its advertised payload");
  }
  const std::uint8_t* payload = bytes.data() + kFrameHeaderBytes;
  const std::uint64_t expect = get_u64(payload + len);
  const std::uint64_t actual = fnv1a(payload, len);
  if (expect != actual) {
    throw WireError(WireFault::kChecksumMismatch, "payload checksum mismatch");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(raw_type);
  frame.version = get_u16(bytes.data() + 4);
  frame.payload.assign(payload, payload + len);
  return frame;
}

std::vector<std::uint8_t> read_frame_bytes(Socket& sock, std::chrono::milliseconds timeout,
                                           const std::atomic<bool>* cancel) {
  std::vector<std::uint8_t> raw(kFrameHeaderBytes);
  if (!sock.read_exact(raw.data(), raw.size(), timeout, cancel)) {
    throw WireError(WireFault::kClosed, "no frame (peer closed, timed out, or cancelled)");
  }
  const std::uint32_t len = check_header(raw);
  raw.resize(kFrameHeaderBytes + len + kFrameTrailerBytes);
  if (!sock.read_exact(raw.data() + kFrameHeaderBytes, len + kFrameTrailerBytes, timeout,
                       cancel)) {
    throw WireError(WireFault::kTruncated, "peer died mid-frame");
  }
  return raw;
}

Frame read_frame(Socket& sock, std::chrono::milliseconds timeout,
                 const std::atomic<bool>* cancel) {
  return decode_frame(read_frame_bytes(sock, timeout, cancel));
}

bool write_frame(Socket& sock, MsgType type, std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  return sock.write_all(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// Messages

std::vector<std::uint8_t> encode_query(const QuerySpec& spec) {
  WireWriter w;
  w.u64(spec.query_id);
  w.u64(spec.archive_id);
  w.u32(spec.shard_count);
  w.u8(spec.shard_policy);
  w.u32(spec.shard_id);
  w.u8(spec.mode);
  w.u32(spec.k);
  w.u64(spec.op_budget);
  w.u64(spec.timeout_ns);
  w.f64(spec.bias);
  w.u32(static_cast<std::uint32_t>(spec.weights.size()));
  for (double weight : spec.weights) w.f64(weight);
  w.u32(static_cast<std::uint32_t>(spec.names.size()));
  for (const std::string& name : spec.names) w.str(name);
  // v2 trace context, presence-based: an untraced query stays bit-identical
  // to the v1 encoding, so old servers keep working on the untraced path.
  if (spec.trace_id != 0) {
    w.u8(1);
    w.u64(spec.trace_id);
    w.u64(spec.parent_span);
  }
  return w.take();
}

QuerySpec decode_query(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  QuerySpec spec;
  spec.query_id = r.u64();
  spec.archive_id = r.u64();
  spec.shard_count = r.u32();
  spec.shard_policy = r.u8();
  spec.shard_id = r.u32();
  spec.mode = r.u8();
  spec.k = r.u32();
  spec.op_budget = r.u64();
  spec.timeout_ns = r.u64();
  spec.bias = r.f64();
  const std::uint32_t n_weights = r.u32();
  if (r.remaining() < static_cast<std::size_t>(n_weights) * 8) {
    throw WireError(WireFault::kMalformed, "query weight count oversells the payload");
  }
  spec.weights.reserve(n_weights);
  for (std::uint32_t i = 0; i < n_weights; ++i) spec.weights.push_back(r.f64());
  const std::uint32_t n_names = r.u32();
  if (r.remaining() < static_cast<std::size_t>(n_names) * 4) {
    throw WireError(WireFault::kMalformed, "query name count oversells the payload");
  }
  spec.names.reserve(n_names);
  for (std::uint32_t i = 0; i < n_names; ++i) spec.names.push_back(r.str());
  if (spec.shard_count == 0 || spec.shard_id >= spec.shard_count || spec.k == 0 ||
      spec.shard_policy > 1 || spec.mode > 3) {
    throw WireError(WireFault::kMalformed, "query spec fields out of range");
  }
  // v1 payload ends here (untraced); v2 appends an optional trace block.
  if (!r.done()) {
    if (r.u8() != 1) {
      throw WireError(WireFault::kMalformed, "unknown trace block tag after query spec");
    }
    spec.trace_id = r.u64();
    spec.parent_span = r.u64();
    if (spec.trace_id == 0) {
      throw WireError(WireFault::kMalformed, "trace block with a zero trace id");
    }
  }
  if (!r.done()) throw WireError(WireFault::kMalformed, "trailing bytes after query spec");
  return spec;
}

std::vector<std::uint8_t> encode_partial(const WirePartial& partial) {
  WireWriter w;
  w.u64(partial.query_id);
  w.u64(static_cast<std::uint64_t>(partial.partial.shard_id));
  w.u8(static_cast<std::uint8_t>(partial.partial.result.status));
  w.f64(partial.partial.result.missed_bound);
  w.u64(partial.partial.result.bad_points);
  w.u32(static_cast<std::uint32_t>(partial.partial.result.hits.size()));
  for (const RasterHit& hit : partial.partial.result.hits) {
    w.u64(static_cast<std::uint64_t>(hit.x));
    w.u64(static_cast<std::uint64_t>(hit.y));
    w.f64(hit.score);
  }
  w.u64(partial.partial.pixels_visited);
  w.u64(partial.partial.tiles_scanned);
  w.u64(partial.partial.tiles_pruned);
  w.u64(partial.meter_points);
  w.u64(partial.meter_ops);
  w.u64(partial.meter_bytes);
  w.u64(partial.meter_pruned);
  w.u64(partial.scan_ops);
  w.u64(partial.model_terms);
  // v2 trace block, presence-based like the query side.
  if (partial.has_trace) {
    w.u8(1);
    w.u64(partial.trace.remote_trace_id);
    w.u64(partial.trace.server_recv_ns);
    w.u64(partial.trace.server_send_ns);
    w.u64(partial.trace.queue_wait_ns);
    w.u64(partial.trace.exec_ns);
    w.u64(partial.trace.trace_start_ns);
    w.u32(static_cast<std::uint32_t>(partial.trace.spans.size()));
    for (const WireSpan& span : partial.trace.spans) {
      w.str(span.name);
      w.u32(span.parent);
      w.u64(span.start_ns);
      w.u64(span.duration_ns);
      w.u32(static_cast<std::uint32_t>(span.attrs.size()));
      for (const auto& [key, value] : span.attrs) {
        w.str(key);
        w.f64(value);
      }
      w.u32(static_cast<std::uint32_t>(span.notes.size()));
      for (const auto& [key, value] : span.notes) {
        w.str(key);
        w.str(value);
      }
    }
  }
  return w.take();
}

WirePartial decode_partial(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WirePartial out;
  out.query_id = r.u64();
  out.partial.shard_id = static_cast<std::size_t>(r.u64());
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ResultStatus::kShed)) {
    throw WireError(WireFault::kMalformed, "unknown ResultStatus on the wire");
  }
  out.partial.result.status = static_cast<ResultStatus>(status);
  out.partial.result.missed_bound = r.f64();
  out.partial.result.bad_points = r.u64();
  const std::uint32_t n_hits = r.u32();
  if (r.remaining() < static_cast<std::size_t>(n_hits) * 24) {
    throw WireError(WireFault::kMalformed, "hit count oversells the payload");
  }
  out.partial.result.hits.reserve(n_hits);
  for (std::uint32_t i = 0; i < n_hits; ++i) {
    RasterHit hit;
    hit.x = static_cast<std::size_t>(r.u64());
    hit.y = static_cast<std::size_t>(r.u64());
    hit.score = r.f64();
    out.partial.result.hits.push_back(hit);
  }
  out.partial.pixels_visited = r.u64();
  out.partial.tiles_scanned = r.u64();
  out.partial.tiles_pruned = r.u64();
  out.meter_points = r.u64();
  out.meter_ops = r.u64();
  out.meter_bytes = r.u64();
  out.meter_pruned = r.u64();
  out.scan_ops = r.u64();
  out.model_terms = r.u64();
  // v1 payload ends here (untraced leg); v2 may append the span tree.
  if (!r.done()) {
    if (r.u8() != 1) {
      throw WireError(WireFault::kMalformed, "unknown trace block tag after partial");
    }
    out.has_trace = true;
    out.trace.remote_trace_id = r.u64();
    out.trace.server_recv_ns = r.u64();
    out.trace.server_send_ns = r.u64();
    out.trace.queue_wait_ns = r.u64();
    out.trace.exec_ns = r.u64();
    out.trace.trace_start_ns = r.u64();
    const std::uint32_t n_spans = r.u32();
    // Minimum wire size per span: empty name (4) + parent (4) + start (8) +
    // duration (8) + two empty annotation counts (8) = 32 bytes.
    if (n_spans > kMaxWireSpans || r.remaining() < static_cast<std::size_t>(n_spans) * 32) {
      throw WireError(WireFault::kMalformed, "span count oversells the payload");
    }
    out.trace.spans.reserve(n_spans);
    for (std::uint32_t i = 0; i < n_spans; ++i) {
      WireSpan span;
      span.name = r.str();
      span.parent = r.u32();
      span.start_ns = r.u64();
      span.duration_ns = r.u64();
      const std::uint32_t n_attrs = r.u32();
      if (n_attrs > kMaxWireSpanAnnotations ||
          r.remaining() < static_cast<std::size_t>(n_attrs) * 12) {
        throw WireError(WireFault::kMalformed, "span attr count oversells the payload");
      }
      span.attrs.reserve(n_attrs);
      for (std::uint32_t a = 0; a < n_attrs; ++a) {
        std::string key = r.str();
        const double value = r.f64();
        span.attrs.emplace_back(std::move(key), value);
      }
      const std::uint32_t n_notes = r.u32();
      if (n_notes > kMaxWireSpanAnnotations ||
          r.remaining() < static_cast<std::size_t>(n_notes) * 8) {
        throw WireError(WireFault::kMalformed, "span note count oversells the payload");
      }
      span.notes.reserve(n_notes);
      for (std::uint32_t n = 0; n < n_notes; ++n) {
        std::string key = r.str();
        std::string value = r.str();
        span.notes.emplace_back(std::move(key), std::move(value));
      }
      out.trace.spans.push_back(std::move(span));
    }
  }
  if (!r.done()) throw WireError(WireFault::kMalformed, "trailing bytes after partial");
  return out;
}

std::vector<std::uint8_t> encode_describe(const DescribeSpec& spec) {
  WireWriter w;
  w.u64(spec.archive_id);
  w.u32(spec.shard_count);
  w.u8(spec.shard_policy);
  w.u32(spec.shard_id);
  return w.take();
}

DescribeSpec decode_describe(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  DescribeSpec spec;
  spec.archive_id = r.u64();
  spec.shard_count = r.u32();
  spec.shard_policy = r.u8();
  spec.shard_id = r.u32();
  if (spec.shard_count == 0 || spec.shard_id >= spec.shard_count || spec.shard_policy > 1) {
    throw WireError(WireFault::kMalformed, "describe spec fields out of range");
  }
  if (!r.done()) throw WireError(WireFault::kMalformed, "trailing bytes after describe");
  return spec;
}

std::vector<std::uint8_t> encode_shard_info(const ShardDescription& info) {
  WireWriter w;
  w.u8(info.known ? 1 : 0);
  w.u64(info.pixel_count);
  w.u64(info.tile_count);
  w.u64(info.archive_pixels);
  w.u32(static_cast<std::uint32_t>(info.band_ranges.size()));
  for (const Interval& range : info.band_ranges) {
    w.f64(range.lo);
    w.f64(range.hi);
  }
  return w.take();
}

ShardDescription decode_shard_info(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ShardDescription info;
  info.known = r.u8() != 0;
  info.pixel_count = r.u64();
  info.tile_count = r.u64();
  info.archive_pixels = r.u64();
  const std::uint32_t n_bands = r.u32();
  if (r.remaining() < static_cast<std::size_t>(n_bands) * 16) {
    throw WireError(WireFault::kMalformed, "band count oversells the payload");
  }
  info.band_ranges.reserve(n_bands);
  for (std::uint32_t i = 0; i < n_bands; ++i) {
    Interval range;
    range.lo = r.f64();
    range.hi = r.f64();
    info.band_ranges.push_back(range);
  }
  if (!r.done()) throw WireError(WireFault::kMalformed, "trailing bytes after shard info");
  return info;
}

std::vector<std::uint8_t> encode_error(const WireErrorMsg& err) {
  WireWriter w;
  w.u32(err.code);
  w.str(err.message);
  return w.take();
}

WireErrorMsg decode_error(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireErrorMsg err;
  err.code = r.u32();
  err.message = r.str();
  if (!r.done()) throw WireError(WireFault::kMalformed, "trailing bytes after error");
  return err;
}

std::vector<std::uint8_t> encode_stats(const WireStats& stats) {
  WireWriter w;
  w.u64(stats.queries_served);
  w.u64(stats.uptime_ns);
  w.u32(static_cast<std::uint32_t>(stats.snapshot.counters.size()));
  for (const obs::CounterSample& c : stats.snapshot.counters) {
    w.str(c.name);
    w.u64(c.value);
  }
  w.u32(static_cast<std::uint32_t>(stats.snapshot.gauges.size()));
  for (const obs::GaugeSample& g : stats.snapshot.gauges) {
    w.str(g.name);
    w.u64(static_cast<std::uint64_t>(g.value));
  }
  w.u32(static_cast<std::uint32_t>(stats.snapshot.histograms.size()));
  for (const obs::HistogramSample& h : stats.snapshot.histograms) {
    w.str(h.name);
    w.u32(static_cast<std::uint32_t>(h.bounds.size()));
    for (std::uint64_t bound : h.bounds) w.u64(bound);
    // counts carries exactly bounds+1 slots (the +inf overflow bucket).
    for (std::uint64_t count : h.counts) w.u64(count);
    w.u64(h.count);
    w.u64(h.sum);
  }
  return w.take();
}

WireStats decode_stats(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WireStats stats;
  stats.queries_served = r.u64();
  stats.uptime_ns = r.u64();
  const std::uint32_t n_counters = r.u32();
  if (n_counters > kMaxWireMetrics ||
      r.remaining() < static_cast<std::size_t>(n_counters) * 12) {
    throw WireError(WireFault::kMalformed, "counter count oversells the payload");
  }
  stats.snapshot.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    obs::CounterSample c;
    c.name = r.str();
    c.value = r.u64();
    stats.snapshot.counters.push_back(std::move(c));
  }
  const std::uint32_t n_gauges = r.u32();
  if (n_gauges > kMaxWireMetrics || r.remaining() < static_cast<std::size_t>(n_gauges) * 12) {
    throw WireError(WireFault::kMalformed, "gauge count oversells the payload");
  }
  stats.snapshot.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    obs::GaugeSample g;
    g.name = r.str();
    g.value = static_cast<std::int64_t>(r.u64());
    stats.snapshot.gauges.push_back(std::move(g));
  }
  const std::uint32_t n_hist = r.u32();
  if (n_hist > kMaxWireMetrics || r.remaining() < static_cast<std::size_t>(n_hist) * 28) {
    throw WireError(WireFault::kMalformed, "histogram count oversells the payload");
  }
  stats.snapshot.histograms.reserve(n_hist);
  for (std::uint32_t i = 0; i < n_hist; ++i) {
    obs::HistogramSample h;
    h.name = r.str();
    const std::uint32_t n_bounds = r.u32();
    if (n_bounds > kMaxWireHistogramBuckets ||
        r.remaining() < (static_cast<std::size_t>(n_bounds) * 2 + 1) * 8) {
      throw WireError(WireFault::kMalformed, "bucket count oversells the payload");
    }
    h.bounds.reserve(n_bounds);
    for (std::uint32_t b = 0; b < n_bounds; ++b) h.bounds.push_back(r.u64());
    h.counts.reserve(n_bounds + 1);
    for (std::uint32_t b = 0; b < n_bounds + 1; ++b) h.counts.push_back(r.u64());
    h.count = r.u64();
    h.sum = r.u64();
    stats.snapshot.histograms.push_back(std::move(h));
  }
  if (!r.done()) throw WireError(WireFault::kMalformed, "trailing bytes after stats");
  return stats;
}

}  // namespace mmir::net
