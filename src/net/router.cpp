#include "net/router.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>

#include "net/socket.hpp"
#include "obs/aggregate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mmir::net {

namespace {

constexpr double kPosInf = std::numeric_limits<double>::infinity();
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr std::size_t kHealthWindow = 256;

const char* fault_name(ShardFault fault) noexcept {
  switch (fault) {
    case ShardFault::kDelay:
      return "delay";
    case ShardFault::kFail:
      return "fail";
    case ShardFault::kCorrupt:
      return "corrupt";
    case ShardFault::kNone:
      break;
  }
  return "none";
}

/// Sleeps `total` in short slices, returning early when the leg is
/// cancelled (hedge sibling won) or the global context stopped — the same
/// shape as the in-process fault path's interruptible wait.
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void interruptible_wait(std::chrono::nanoseconds total, const std::atomic<bool>& cancel,
                        QueryContext& ctx) {
  const auto deadline = std::chrono::steady_clock::now() + total;
  constexpr auto kSlice = std::chrono::microseconds(100);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancel.load(std::memory_order_acquire)) return;
    if (ctx.expired()) return;
    std::this_thread::sleep_for(kSlice);
  }
}

/// One wire leg's mutable state (primary or hedge of one shard).
struct Leg {
  WirePartial reply;
  bool ok = false;       ///< contributed a usable partial (clean or synthesized)
  bool clean = false;    ///< a real server reply, no fault-driven widening
  bool widened = false;  ///< synthesized with the whole-shard bound
  std::atomic<bool> cancel{false};
  std::uint32_t attempts = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t faults = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  ShardFault last_fault = ShardFault::kNone;
  /// Stitched decomposition of the winning attempt (traced replies only):
  /// wire + queue_wait + scan must reconcile with the leg's wall time.
  bool traced = false;
  std::uint64_t wire_ns = 0;
  std::uint64_t queue_ns = 0;
  std::uint64_t scan_ns = 0;
  std::uint64_t wall_ns = 0;  ///< measured attempt window [attempt_start, t1]
  std::int64_t offset_ns = 0;
};

/// Primary + optional hedge legs of one shard; first clean reply wins.
struct Slot {
  Leg primary;
  Leg hedge;
  std::atomic<bool> primary_finished{false};
  std::atomic<int> winner{-1};
  bool hedge_launched = false;
};

void annotate_leg(const obs::Span& span, std::size_t shard, const Leg& leg) {
  if (!span.active()) return;
  span.annotate("shard", static_cast<double>(shard));
  span.annotate("hits", static_cast<double>(leg.reply.partial.result.hits.size()));
  span.annotate("items_examined", static_cast<double>(leg.reply.partial.pixels_visited));
  span.annotate("tiles_scanned", static_cast<double>(leg.reply.partial.tiles_scanned));
  span.annotate("tiles_pruned", static_cast<double>(leg.reply.partial.tiles_pruned));
  span.annotate("attempts", static_cast<double>(leg.attempts));
  span.annotate("timeouts", static_cast<double>(leg.timeouts));
  span.annotate("faults_injected", static_cast<double>(leg.faults));
  span.annotate("bound_widened", leg.widened ? 1.0 : 0.0);
  span.annotate("bytes_sent", static_cast<double>(leg.bytes_sent));
  span.annotate("bytes_received", static_cast<double>(leg.bytes_received));
  span.note("status", to_string(leg.reply.partial.result.status));
  if (leg.last_fault != ShardFault::kNone) span.note("fault", fault_name(leg.last_fault));
  if (!leg.ok) span.note("leg_outcome", "dead");
  if (leg.traced) {
    span.annotate("wire_ns", static_cast<double>(leg.wire_ns));
    span.annotate("queue_wait_ns", static_cast<double>(leg.queue_ns));
    span.annotate("scan_ns", static_cast<double>(leg.scan_ns));
    span.annotate("leg_wall_ns", static_cast<double>(leg.wall_ns));
    span.annotate("clock_offset_ns", static_cast<double>(leg.offset_ns));
  }
}

/// Grafts a traced reply under the still-open leg span: synthesizes the
/// wire / queue_wait / scan decomposition, then rebases the server's span
/// tree into router time (via the port's offset estimate) and nests it
/// under `scan`.  Every grafted time is clamped into the attempt's observed
/// wall window [attempt_start, t1], so the stitched trace stays
/// well_formed() whatever the offset error or a hostile peer claims.
/// Fills leg.wire_ns / queue_ns / scan_ns.
void stitch_remote_trace(const obs::Span& leg_span, std::size_t shard, const WireTrace& remote,
                         std::int64_t offset, std::int64_t attempt_start, std::int64_t t1,
                         Leg& leg) {
  obs::Trace* trace = leg_span.trace();
  if (trace == nullptr) return;
  const std::uint64_t epoch = trace->start_epoch_ns();
  const auto rel = [&](std::int64_t abs) -> std::uint64_t {
    return abs > static_cast<std::int64_t>(epoch)
               ? static_cast<std::uint64_t>(abs) - epoch
               : 0;
  };
  const std::uint64_t win_start = rel(attempt_start);
  const std::uint64_t win_end = std::max(rel(t1), win_start);

  // The three rows tile the attempt window *exactly*: wire is everything
  // the server did not hold the request, queue_wait the scheduler's
  // admission delay, and scan the rest of the server-held time (engine
  // execution plus request decode/encode — the engine-only number stays
  // visible as exec_ns on the grafted remote query span).  Clamping
  // server-held into the window keeps the identity under clock skew or a
  // hostile peer claiming to have held the request longer than the leg ran.
  const std::uint64_t leg_wall = win_end - win_start;
  const std::uint64_t server_held =
      std::min(remote.server_send_ns > remote.server_recv_ns
                   ? remote.server_send_ns - remote.server_recv_ns
                   : 0,
               leg_wall);
  leg.traced = true;
  leg.offset_ns = offset;
  leg.wall_ns = static_cast<std::uint64_t>(t1 - attempt_start > 0 ? t1 - attempt_start : 0);
  leg.wire_ns = leg_wall - server_held;
  leg.queue_ns = std::min(remote.queue_wait_ns, server_held);
  leg.scan_ns = server_held - leg.queue_ns;

  // wire: everything the server did NOT hold the request — connect, both
  // frame transfers, kernel queues.  Rendered from the attempt's start so
  // the three rows tile the leg window.
  const std::size_t wire_idx =
      trace->add_completed_span("wire", leg_span.index(), win_start,
                                std::min(leg.wire_ns, win_end - win_start));
  trace->annotate(wire_idx, "wire_ns", static_cast<double>(leg.wire_ns));
  trace->annotate(wire_idx, "clock_offset_ns", static_cast<double>(offset));

  // queue_wait: the scheduler admitted the scan at (trace start - queue
  // wait) in server time; the engine trace clock starts at dispatch.
  const std::uint64_t q_start_server =
      remote.trace_start_ns > remote.queue_wait_ns ? remote.trace_start_ns - remote.queue_wait_ns
                                                   : 0;
  const RebasedInterval queued = rebase_interval(offset, q_start_server, remote.queue_wait_ns,
                                                 epoch, win_start, win_end);
  const std::size_t queue_idx = trace->add_completed_span("queue_wait", leg_span.index(),
                                                          queued.start_ns, queued.duration_ns);
  trace->annotate(queue_idx, "queue_wait_ns", static_cast<double>(remote.queue_wait_ns));

  // scan: the server-held processing window (dispatch-to-completion plus
  // decode/encode); the remote span tree nests under it.
  const RebasedInterval scan = rebase_interval(offset, remote.trace_start_ns, leg.scan_ns,
                                               epoch, win_start, win_end);
  const std::size_t scan_idx =
      trace->add_completed_span("scan", leg_span.index(), scan.start_ns, scan.duration_ns);
  trace->annotate(scan_idx, "scan_ns", static_cast<double>(leg.scan_ns));
  trace->annotate(scan_idx, "exec_ns", static_cast<double>(remote.exec_ns));
  const std::uint64_t remote_id =
      namespaced_remote_id(static_cast<std::uint32_t>(shard), remote.remote_trace_id);
  trace->note(scan_idx, "remote_query_id", std::to_string(remote_id));

  // Remote spans render under their own chrome pid, one per server.
  const double remote_pid = static_cast<double>(shard + 2);
  const std::uint64_t scan_end = scan.start_ns + scan.duration_ns;
  std::vector<std::size_t> grafted(remote.spans.size(), obs::kNoSpan);
  for (std::size_t i = 0; i < remote.spans.size(); ++i) {
    const WireSpan& span = remote.spans[i];
    const RebasedInterval when =
        rebase_interval(offset, remote.trace_start_ns + span.start_ns, span.duration_ns, epoch,
                        scan.start_ns, scan_end);
    // A parent that is missing, forward, or itself dropped demotes the span
    // to a child of `scan` — hostile trees cannot break the stitch.
    std::size_t parent = scan_idx;
    if (span.parent != kWireNoParent && span.parent < i &&
        grafted[span.parent] != obs::kNoSpan) {
      parent = grafted[span.parent];
    }
    const std::size_t idx =
        trace->add_completed_span(span.name, parent, when.start_ns, when.duration_ns);
    grafted[i] = idx;
    for (const auto& [key, value] : span.attrs) trace->annotate(idx, key, value);
    for (const auto& [key, value] : span.notes) trace->note(idx, key, value);
    trace->annotate(idx, "remote_pid", remote_pid);
    if (parent == scan_idx) {
      trace->note(idx, "remote_query_id", std::to_string(remote_id));
    }
  }
}

}  // namespace

Router::Router(RouterConfig config) : config_(std::move(config)) {
  MMIR_EXPECTS(!config_.ports.empty());
}

ShardDescription Router::describe_shard(std::uint64_t archive_id, std::uint32_t shard_count,
                                        std::uint8_t policy, std::uint32_t shard) {
  const auto key = std::make_tuple(archive_id, shard_count, policy, shard);
  {
    const std::lock_guard<std::mutex> lock(meta_mutex_);
    const auto it = meta_cache_.find(key);
    if (it != meta_cache_.end()) return it->second;
  }
  ShardDescription info;
  Socket sock = Socket::connect_loopback(config_.ports[shard]);
  if (!sock.valid()) return info;
  DescribeSpec spec;
  spec.archive_id = archive_id;
  spec.shard_count = shard_count;
  spec.shard_policy = policy;
  spec.shard_id = shard;
  if (!write_frame(sock, MsgType::kDescribe, encode_describe(spec))) return info;
  try {
    const Frame frame = read_frame(sock, config_.default_leg_timeout);
    if (frame.type != MsgType::kShardInfo) return info;
    info = decode_shard_info(frame.payload);
  } catch (const WireError&) {
    return ShardDescription{};
  }
  if (info.known) {
    const std::lock_guard<std::mutex> lock(meta_mutex_);
    meta_cache_.emplace(key, info);
  }
  return info;
}

RouterResult Router::execute(const RouterQuery& query, QueryContext& ctx, CostMeter& meter) {
  MMIR_EXPECTS(query.model != nullptr);
  MMIR_EXPECTS(query.k > 0);
  const std::size_t count =
      query.shard_count == 0 ? config_.ports.size() : static_cast<std::size_t>(query.shard_count);
  MMIR_EXPECTS(count >= 1 && count <= config_.ports.size());

  ScopedTimer timer(meter);
  const obs::Span span = obs::Span::child_of(ctx.span(), "router");
  const std::uint8_t policy8 = static_cast<std::uint8_t>(query.policy);
  const ShardFaultPolicy& policy = config_.policy;
  const int max_attempts = std::max(1, policy.max_attempts);

  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.initial_backoff = policy.retry_initial_backoff;
  retry.max_backoff = policy.retry_max_backoff;
  retry.jitter_seed = policy.jitter_seed;

  const auto leg_timeout = std::max(
      std::chrono::milliseconds(1),
      policy.shard_timeout.count() > 0
          ? std::chrono::duration_cast<std::chrono::milliseconds>(policy.shard_timeout)
          : config_.default_leg_timeout);

  // Shard metadata: dead-leg bounds, empty-shard skips, §4.2 totals.
  std::vector<ShardDescription> meta(count);
  for (std::size_t s = 0; s < count; ++s) {
    meta[s] = describe_shard(query.archive_id, static_cast<std::uint32_t>(count), policy8,
                             static_cast<std::uint32_t>(s));
  }

  // A leg the router could not hear from is covered by its whole-shard
  // bound; with no metadata at all the bound is +inf — maximally wide,
  // still sound.
  const auto shard_bound = [&](std::size_t s) -> double {
    if (!meta[s].known) return kPosInf;
    if (meta[s].pixel_count == 0) return kNegInf;
    if (meta[s].band_ranges.empty()) return kPosInf;
    return query.model->evaluate_interval(meta[s].band_ranges).hi;
  };

  // Static S-way budget split: remote processes share no atomic budget, so
  // each leg gets its slice up front.  Re-slices only where a budgeted scan
  // stops; every leg still bounds whatever it skipped.
  constexpr std::uint64_t kUnlimited = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> leg_budget(count, kUnlimited);
  if (query.op_budget != kUnlimited) {
    const std::uint64_t base = query.op_budget / count;
    const std::uint64_t rem = query.op_budget % count;
    for (std::size_t s = 0; s < count; ++s) leg_budget[s] = base + (s < rem ? 1 : 0);
  }

  const std::uint64_t query_id = query_seq_.fetch_add(1, std::memory_order_relaxed);
  std::vector<QuerySpec> specs(count);
  for (std::size_t s = 0; s < count; ++s) {
    QuerySpec& spec = specs[s];
    spec.query_id = query_id;
    spec.archive_id = query.archive_id;
    spec.shard_count = static_cast<std::uint32_t>(count);
    spec.shard_policy = policy8;
    spec.shard_id = static_cast<std::uint32_t>(s);
    spec.mode = static_cast<std::uint8_t>(query.mode);
    spec.k = static_cast<std::uint32_t>(query.k);
    spec.op_budget = leg_budget[s];
    spec.bias = query.model->bias();
    spec.weights.assign(query.model->weights().begin(), query.model->weights().end());
    spec.names.reserve(query.model->dim());
    for (std::size_t i = 0; i < query.model->dim(); ++i) spec.names.push_back(query.model->name(i));
    if (span.active()) {
      // Propagate trace context: servers run the scan traced and ship the
      // span tree back.  Manually-built traces may carry id 0; the wire
      // treats 0 as "untraced", so fall back to the router query sequence.
      const std::uint64_t trace_id = span.trace()->id();
      spec.trace_id = trace_id != 0 ? trace_id : query_id;
      spec.parent_span = static_cast<std::uint64_t>(span.index());
    }
  }

  std::vector<std::unique_ptr<Slot>> slots;
  slots.reserve(count);
  for (std::size_t s = 0; s < count; ++s) slots.push_back(std::make_unique<Slot>());

  // One attempt loop per leg, the remote twin of the in-process fault path:
  // chaos verdicts, per-attempt deadline, capped jittered backoff, and the
  // same dispositions (clean / stop-reason / degraded+widened / dead).
  const auto run_leg = [&](std::size_t s, int leg_id, Leg& leg, Slot& slot,
                           const obs::Span& leg_span) {
    const auto synth = [&](ResultStatus status, double bound) {
      leg.reply = WirePartial{};
      leg.reply.partial.shard_id = s;
      leg.reply.partial.result.status = status;
      leg.reply.partial.result.missed_bound = bound;
    };

    if (meta[s].known && meta[s].pixel_count == 0) {
      synth(ResultStatus::kComplete, kNegInf);
      leg.ok = leg.clean = true;
      return;
    }

    ExponentialBackoff backoff(
        retry, mix64(static_cast<std::uint64_t>(s) * 2 + static_cast<std::uint64_t>(leg_id)));
    const int attempt_base = leg_id == 0 ? 0 : kHedgeAttemptBase;

    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (leg.cancel.load(std::memory_order_acquire)) return;
      if (ctx.expired()) {
        synth(ctx.stop_reason(), shard_bound(s));
        leg.ok = true;
        return;
      }
      ++leg.attempts;

      ShardFaultAction action;
      if (config_.chaos != nullptr) {
        action = config_.chaos->on_attempt(s, attempt_base + attempt);
        if (action.kind != ShardFault::kNone) {
          ++leg.faults;
          leg.last_fault = action.kind;
        }
      }

      const auto deadline = std::chrono::steady_clock::now() + leg_timeout;
      bool transient = false;
      bool timed_out = false;

      if (action.kind == ShardFault::kDelay) {
        interruptible_wait(action.delay, leg.cancel, ctx);
        if (std::chrono::steady_clock::now() >= deadline) timed_out = true;
      } else if (action.kind == ShardFault::kFail) {
        transient = true;
      }

      if (!transient && !timed_out) {
        const std::int64_t attempt_start = steady_now_ns();
        Socket sock = Socket::connect_loopback(config_.ports[s]);
        if (!sock.valid()) {
          transient = true;
        } else {
          const std::vector<std::uint8_t> payload = encode_query(specs[s]);
          const std::int64_t t0 = steady_now_ns();
          if (!write_frame(sock, MsgType::kQuery, payload)) {
            transient = true;
          } else {
            leg.bytes_sent += payload.size() + kFrameHeaderBytes + kFrameTrailerBytes;
            const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
            if (remaining.count() <= 0) {
              timed_out = true;
            } else {
              try {
                std::vector<std::uint8_t> raw = read_frame_bytes(sock, remaining, &leg.cancel);
                const std::int64_t t1 = steady_now_ns();
                leg.bytes_received += raw.size();
                if (action.kind == ShardFault::kCorrupt &&
                    raw.size() > kFrameHeaderBytes + kFrameTrailerBytes) {
                  // Model wire corruption by flipping one deterministic
                  // payload byte; decode_frame's checksum catches it below.
                  const std::size_t len = raw.size() - kFrameHeaderBytes - kFrameTrailerBytes;
                  const std::uint64_t mix = mix64(query_id ^ (static_cast<std::uint64_t>(s) << 32) ^
                                                  static_cast<std::uint64_t>(attempt_base + attempt));
                  raw[kFrameHeaderBytes + static_cast<std::size_t>(mix % len)] ^= 0x5a;
                }
                const Frame frame = decode_frame(raw);
                if (frame.type == MsgType::kResult) {
                  WirePartial reply = decode_partial(frame.payload);
                  if (reply.partial.shard_id != s) {
                    transient = true;
                  } else if (reply.partial.result.status == ResultStatus::kShed) {
                    // Server back-pressure: the scan never ran; retry.
                    transient = true;
                  } else {
                    leg.reply = std::move(reply);
                    leg.ok = leg.clean = true;
                    if (leg.reply.has_trace && leg_span.active()) {
                      ClockSample sample;
                      sample.t0 = t0;
                      sample.t1 = t1;
                      sample.s_recv =
                          static_cast<std::int64_t>(leg.reply.trace.server_recv_ns);
                      sample.s_send =
                          static_cast<std::int64_t>(leg.reply.trace.server_send_ns);
                      const std::int64_t offset = update_clock(config_.ports[s], sample);
                      stitch_remote_trace(leg_span, s, leg.reply.trace, offset, attempt_start,
                                          t1, leg);
                    }
                    int expected = -1;
                    if (slot.winner.compare_exchange_strong(expected, leg_id)) {
                      (leg_id == 0 ? slot.hedge : slot.primary)
                          .cancel.store(true, std::memory_order_release);
                    }
                    return;
                  }
                } else {
                  // kError (unknown archive, bad request, internal) or an
                  // unexpected type: transient from the leg's perspective.
                  transient = true;
                }
              } catch (const WireError& err) {
                if (err.fault() == WireFault::kClosed) {
                  if (leg.cancel.load(std::memory_order_acquire)) return;  // hedge race lost
                  if (ctx.expired()) {
                    synth(ctx.stop_reason(), shard_bound(s));
                    leg.ok = true;
                    return;
                  }
                  timed_out = true;
                } else {
                  // Truncated / corrupt / skewed / malformed frame.
                  transient = true;
                }
              }
            }
          }
        }
      }

      if (leg.cancel.load(std::memory_order_acquire)) return;
      if (ctx.expired()) {
        synth(ctx.stop_reason(), shard_bound(s));
        leg.ok = true;
        return;
      }

      if (timed_out) {
        ++leg.timeouts;
        if (attempt + 1 < max_attempts) {
          interruptible_wait(backoff.next_delay(), leg.cancel, ctx);
          continue;
        }
        synth(ResultStatus::kDegraded, shard_bound(s));
        leg.ok = true;
        leg.widened = true;
        return;
      }
      if (attempt + 1 >= max_attempts) return;  // leg dead
      interruptible_wait(backoff.next_delay(), leg.cancel, ctx);
    }
  };

  std::mutex wait_mutex;
  std::condition_variable wait_cv;
  std::size_t primaries_left = count;

  const auto leg_task = [&](std::size_t s, int leg_id) {
    Slot& slot = *slots[s];
    Leg& leg = leg_id == 0 ? slot.primary : slot.hedge;
    const std::string name =
        "shard_" + std::to_string(s) + (leg_id == 0 ? "" : "_hedge");
    const obs::Span leg_span = obs::Span::child_of(&span, name);
    if (leg_id == 1) leg_span.note("leg", "hedge");
    run_leg(s, leg_id, leg, slot, leg_span);
    annotate_leg(leg_span, s, leg);
    if (leg_id == 0) {
      slot.primary_finished.store(true, std::memory_order_release);
      {
        const std::lock_guard<std::mutex> lock(wait_mutex);
        --primaries_left;
      }
      wait_cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(count * 2);
  for (std::size_t s = 0; s < count; ++s) {
    threads.emplace_back([&leg_task, s] { leg_task(s, 0); });
  }

  if (policy.hedge) {
    {
      std::unique_lock<std::mutex> lock(wait_mutex);
      wait_cv.wait_for(lock, policy.hedge_delay, [&] { return primaries_left == 0; });
    }
    for (std::size_t s = 0; s < count && !ctx.expired(); ++s) {
      Slot& slot = *slots[s];
      if (meta[s].known && meta[s].pixel_count == 0) continue;
      if (slot.primary_finished.load(std::memory_order_acquire) && slot.primary.clean) continue;
      slot.hedge_launched = true;
      threads.emplace_back([&leg_task, s] { leg_task(s, 1); });
    }
  }
  for (std::thread& t : threads) t.join();

  // Gather, in shard order for deterministic tie-breaks.
  RouterResult res;
  ShardedTopK& out = res.result;
  ShardFaultStats& stats = out.fault_stats;
  out.shard_status.assign(count, ResultStatus::kComplete);
  std::vector<ShardPartial> partials(count);
  std::vector<LegEvent> events(count);
  std::uint64_t pixels_visited = 0;
  std::uint64_t scan_ops = 0;
  std::uint64_t model_terms = 0;
  std::size_t live = 0;

  for (std::size_t s = 0; s < count; ++s) {
    Slot& slot = *slots[s];
    Leg& primary = slot.primary;
    Leg& hedge = slot.hedge;
    stats.attempts += primary.attempts + hedge.attempts;
    if (primary.attempts > 1) stats.retries += primary.attempts - 1;
    if (hedge.attempts > 1) stats.retries += hedge.attempts - 1;
    stats.timeouts += primary.timeouts + hedge.timeouts;
    stats.faults_injected += primary.faults + hedge.faults;
    if (slot.hedge_launched) ++stats.hedges_launched;
    res.bytes_sent += primary.bytes_sent + hedge.bytes_sent;
    res.bytes_received += primary.bytes_received + hedge.bytes_received;

    const bool empty_shard = meta[s].known && meta[s].pixel_count == 0;
    if (!empty_shard) ++live;

    events[s].shard = static_cast<std::uint32_t>(s);
    events[s].timeouts = primary.timeouts + hedge.timeouts;
    events[s].retries = (primary.attempts > 1 ? primary.attempts - 1 : 0) +
                        (hedge.attempts > 1 ? hedge.attempts - 1 : 0);

    Leg* pick = nullptr;
    if (primary.clean) {
      pick = &primary;
    } else if (hedge.clean) {
      pick = &hedge;
      ++stats.hedges_won;
    } else if (primary.ok) {
      pick = &primary;
    } else if (hedge.ok) {
      pick = &hedge;
      ++stats.hedges_won;
    }

    if (pick != nullptr) {
      partials[s] = std::move(pick->reply.partial);
      meter.add_points(pick->reply.meter_points);
      meter.add_ops(pick->reply.meter_ops);
      meter.add_bytes(pick->reply.meter_bytes);
      meter.add_pruned(pick->reply.meter_pruned);
      pixels_visited += partials[s].pixels_visited;
      scan_ops += pick->reply.scan_ops;
      model_terms = std::max(model_terms, pick->reply.model_terms);
      if (pick->widened) {
        ++stats.bounds_widened;
        ++stats.degraded_shards;
      }
    } else {
      partials[s].shard_id = s;
      partials[s].result.status = ResultStatus::kDegraded;
      partials[s].result.missed_bound = shard_bound(s);
      ++stats.failed_shards;
      ++stats.bounds_widened;
      ++stats.degraded_shards;
      events[s].failed = true;
    }
    out.shard_status[s] = partials[s].result.status;
  }

  out.merged = merge_shard_partials(partials, query.k);
  if (live > 0 && stats.failed_shards == live) {
    // Every live leg contributed nothing: the answer is no answer.
    out.merged.status = ResultStatus::kShed;
    out.merged.missed_bound = kPosInf;
  }

  if (span.active()) {
    std::uint64_t total_pixels = 0;
    for (const ShardDescription& m : meta) {
      if (m.known) {
        total_pixels = m.archive_pixels;
        break;
      }
    }
    if (model_terms == 0) model_terms = query.model->dim();
    span.annotate("total_pixels", static_cast<double>(total_pixels));
    span.annotate("model_terms", static_cast<double>(model_terms));
    span.annotate("pixels_visited", static_cast<double>(pixels_visited));
    span.annotate("scan_ops", static_cast<double>(scan_ops));
    span.annotate("shards", static_cast<double>(count));
    span.annotate("hits", static_cast<double>(out.merged.hits.size()));
    span.annotate("bad_points", static_cast<double>(out.merged.bad_points));
    span.annotate("meter_points", static_cast<double>(meter.points()));
    span.annotate("meter_ops", static_cast<double>(meter.ops()));
    span.annotate("meter_pruned", static_cast<double>(meter.pruned()));
    span.note("status", to_string(out.merged.status));

    const obs::Span gather = obs::Span::child_of(&span, "gather");
    gather.annotate("attempts", static_cast<double>(stats.attempts));
    gather.annotate("retries", static_cast<double>(stats.retries));
    gather.annotate("timeouts", static_cast<double>(stats.timeouts));
    gather.annotate("faults_injected", static_cast<double>(stats.faults_injected));
    gather.annotate("hedges_launched", static_cast<double>(stats.hedges_launched));
    gather.annotate("hedges_won", static_cast<double>(stats.hedges_won));
    gather.annotate("bounds_widened", static_cast<double>(stats.bounds_widened));
    gather.annotate("shards_failed", static_cast<double>(stats.failed_shards));
    gather.annotate("bytes_sent", static_cast<double>(res.bytes_sent));
    gather.annotate("bytes_received", static_cast<double>(res.bytes_received));
    gather.note("status", to_string(out.merged.status));
  }

  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("engine_net_queries_total").add();
    m.counter("engine_net_attempts_total").add(stats.attempts);
    m.counter("engine_net_retries_total").add(stats.retries);
    m.counter("engine_net_timeouts_total").add(stats.timeouts);
    m.counter("engine_net_faults_injected_total").add(stats.faults_injected);
    m.counter("engine_net_hedges_total").add(stats.hedges_launched);
    m.counter("engine_net_hedge_wins_total").add(stats.hedges_won);
    m.counter("engine_net_bounds_widened_total").add(stats.bounds_widened);
    m.counter("engine_net_legs_failed_total").add(stats.failed_shards);
    m.counter("engine_net_bytes_sent_total").add(res.bytes_sent);
    m.counter("engine_net_bytes_received_total").add(res.bytes_received);
    // Labeled family view of the same bytes (the exporter passes the label
    // block through verbatim), plus the per-leg wire-time distribution the
    // E14 overhead experiment and ROADMAP item 3 tuning read.
    m.counter("engine_net_wire_bytes{direction=\"sent\"}").add(res.bytes_sent);
    m.counter("engine_net_wire_bytes{direction=\"received\"}").add(res.bytes_received);
    const obs::Histogram wire_hist = m.histogram("engine_net_wire_time_ns");
    for (const std::unique_ptr<Slot>& slot : slots) {
      if (slot->primary.traced) wire_hist.observe(slot->primary.wire_ns);
      if (slot->hedge.traced) wire_hist.observe(slot->hedge.wire_ns);
    }
  }

  record_health(events);
  return res;
}

std::int64_t Router::update_clock(std::uint16_t port, const ClockSample& sample) {
  const std::lock_guard<std::mutex> lock(clock_mutex_);
  ClockOffsetEstimator& estimator = clock_[port];
  estimator.add_sample(sample);
  return estimator.offset_ns();
}

std::int64_t Router::clock_offset_ns(std::uint16_t port) const {
  const std::lock_guard<std::mutex> lock(clock_mutex_);
  const auto it = clock_.find(port);
  return it == clock_.end() ? 0 : it->second.offset_ns();
}

void Router::record_health(const std::vector<LegEvent>& events) {
  const std::lock_guard<std::mutex> lock(health_mutex_);
  for (const LegEvent& event : events) health_window_.push_back(event);
  while (health_window_.size() > kHealthWindow) health_window_.pop_front();
}

std::string Router::fleet_prometheus() {
  struct ShardStats {
    bool up = false;
    WireStats stats;
    double qps = 0;
  };
  const auto now = std::chrono::steady_clock::now();
  std::vector<ShardStats> fleet(config_.ports.size());
  for (std::size_t s = 0; s < config_.ports.size(); ++s) {
    ShardStats& entry = fleet[s];
    try {
      Socket sock = Socket::connect_loopback(config_.ports[s]);
      if (!sock.valid()) continue;
      if (!write_frame(sock, MsgType::kStats, {})) continue;
      const Frame frame = read_frame(sock, config_.default_leg_timeout);
      if (frame.type != MsgType::kStatsReply) continue;  // v1 peer: kError
      entry.stats = decode_stats(frame.payload);
      entry.up = true;
    } catch (const WireError&) {
      continue;  // down or hostile; renders as fleet_up 0, page still serves
    }
    const std::lock_guard<std::mutex> lock(fleet_mutex_);
    FleetPrev& prev = fleet_prev_[config_.ports[s]];
    if (prev.valid && entry.stats.queries_served >= prev.queries_served) {
      const double dt = std::chrono::duration<double>(now - prev.at).count();
      if (dt > 0) {
        entry.qps =
            static_cast<double>(entry.stats.queries_served - prev.queries_served) / dt;
      }
    }
    prev.queries_served = entry.stats.queries_served;
    prev.at = now;
    prev.valid = true;
  }

  // Router-side view of the same fleet: leg timeouts/failures over the
  // rolling health window, so /fleetz shows both what the servers report
  // and what the router experienced talking to them.
  std::vector<std::uint64_t> leg_timeouts(config_.ports.size(), 0);
  std::vector<std::uint64_t> leg_failures(config_.ports.size(), 0);
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (const LegEvent& event : health_window_) {
      if (event.shard < leg_timeouts.size()) {
        leg_timeouts[event.shard] += event.timeouts;
        if (event.failed) ++leg_failures[event.shard];
      }
    }
  }

  const auto find_counter = [](const WireStats& stats, std::string_view name) -> std::uint64_t {
    for (const obs::CounterSample& c : stats.snapshot.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  const auto find_histogram =
      [](const WireStats& stats, std::string_view name) -> const obs::HistogramSample* {
    for (const obs::HistogramSample& h : stats.snapshot.histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  };

  std::string out;
  char line[256];
  const auto emit = [&out, &line](const char* fmt, auto... args) {
    std::snprintf(line, sizeof line, fmt, args...);
    out += line;
  };
  const auto for_each_shard = [&](const char* help, const char* type, const char* family,
                                  auto value_fn) {
    out += "# HELP ";
    out += family;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += family;
    out += ' ';
    out += type;
    out += '\n';
    for (std::size_t s = 0; s < fleet.size(); ++s) value_fn(s, family);
  };

  for_each_shard("1 when the shard server answered the kStats poll.", "gauge", "fleet_up",
                 [&](std::size_t s, const char* family) {
                   emit("%s{shard=\"%zu\",port=\"%u\"} %d\n", family, s, config_.ports[s],
                        fleet[s].up ? 1 : 0);
                 });
  for_each_shard("Queries the server answered with a kResult frame since start.", "counter",
                 "fleet_queries_served_total", [&](std::size_t s, const char* family) {
                   if (!fleet[s].up) return;
                   emit("%s{shard=\"%zu\",port=\"%u\"} %llu\n", family, s, config_.ports[s],
                        static_cast<unsigned long long>(fleet[s].stats.queries_served));
                 });
  for_each_shard("Served-query rate since the previous /fleetz scrape.", "gauge", "fleet_qps",
                 [&](std::size_t s, const char* family) {
                   if (!fleet[s].up) return;
                   emit("%s{shard=\"%zu\",port=\"%u\"} %.3f\n", family, s, config_.ports[s],
                        fleet[s].qps);
                 });
  for_each_shard("Interpolated p99 of the server's engine_exec_time_ns histogram.", "gauge",
                 "fleet_exec_p99_ns", [&](std::size_t s, const char* family) {
                   if (!fleet[s].up) return;
                   const obs::HistogramSample* hist =
                       find_histogram(fleet[s].stats, "engine_exec_time_ns");
                   if (hist == nullptr || hist->count == 0) return;
                   emit("%s{shard=\"%zu\",port=\"%u\"} %.0f\n", family, s, config_.ports[s],
                        obs::interpolated_quantile(*hist, 0.99));
                 });
  for_each_shard("Jobs the server's engine shed under back-pressure.", "counter",
                 "fleet_shed_total", [&](std::size_t s, const char* family) {
                   if (!fleet[s].up) return;
                   emit("%s{shard=\"%zu\",port=\"%u\"} %llu\n", family, s, config_.ports[s],
                        static_cast<unsigned long long>(
                            find_counter(fleet[s].stats, "engine_jobs_shed_total")));
                 });
  for_each_shard("Server uptime in seconds at poll time.", "gauge", "fleet_uptime_seconds",
                 [&](std::size_t s, const char* family) {
                   if (!fleet[s].up) return;
                   emit("%s{shard=\"%zu\",port=\"%u\"} %.1f\n", family, s, config_.ports[s],
                        static_cast<double>(fleet[s].stats.uptime_ns) / 1e9);
                 });
  for_each_shard("Router-observed leg timeouts over the rolling health window.", "gauge",
                 "fleet_leg_timeouts", [&](std::size_t s, const char* family) {
                   emit("%s{shard=\"%zu\",port=\"%u\"} %llu\n", family, s, config_.ports[s],
                        static_cast<unsigned long long>(leg_timeouts[s]));
                 });
  for_each_shard("Router-observed leg failures over the rolling health window.", "gauge",
                 "fleet_leg_failures", [&](std::size_t s, const char* family) {
                   emit("%s{shard=\"%zu\",port=\"%u\"} %llu\n", family, s, config_.ports[s],
                        static_cast<unsigned long long>(leg_failures[s]));
                 });
  for_each_shard("Current clock-offset estimate toward the server (ns).", "gauge",
                 "fleet_clock_offset_ns", [&](std::size_t s, const char* family) {
                   emit("%s{shard=\"%zu\",port=\"%u\"} %lld\n", family, s, config_.ports[s],
                        static_cast<long long>(clock_offset_ns(config_.ports[s])));
                 });
  return out;
}

obs::HealthReport Router::health() const {
  struct Agg {
    std::uint64_t executions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t failures = 0;
  };
  std::map<std::uint32_t, Agg> per_shard;
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    for (const LegEvent& event : health_window_) {
      Agg& agg = per_shard[event.shard];
      ++agg.executions;
      agg.timeouts += event.timeouts;
      agg.retries += event.retries;
      if (event.failed) ++agg.failures;
    }
  }
  obs::HealthReport report;
  for (const auto& [shard, agg] : per_shard) {
    char line[192];
    std::snprintf(line, sizeof line,
                  "remote_shard=%u port=%u executions=%llu timeouts=%llu retries=%llu "
                  "failed=%llu",
                  shard, shard < config_.ports.size() ? config_.ports[shard] : 0,
                  static_cast<unsigned long long>(agg.executions),
                  static_cast<unsigned long long>(agg.timeouts),
                  static_cast<unsigned long long>(agg.retries),
                  static_cast<unsigned long long>(agg.failures));
    report.lines.emplace_back(line);
    if (agg.timeouts > 0 || agg.failures > 0) report.ok = false;
  }
  return report;
}

}  // namespace mmir::net
