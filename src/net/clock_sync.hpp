#pragma once
// Per-connection clock-offset estimation and remote-span rebasing
// (DESIGN.md §6h).
//
// The router and each shard server run on independent steady clocks; to
// graft a server's span tree under the router's leg span, the router must
// translate server timestamps into its own clock.  Each traced reply yields
// one NTP-style sample: the router captures t0 (request written) and t1
// (reply read), the server reports s_recv / s_send, and the offset estimate
// is the difference of the two interval midpoints:
//
//     offset = midpoint(t0, t1) - midpoint(s_recv, s_send)
//
// so server_time + offset = router_time.  The estimate's error is bounded
// by half the "pure wire" round trip (rtt = (t1-t0) - (s_send-s_recv)), so
// the estimator keeps a sliding window of samples (refined over the
// router's health window) and answers with the minimum-rtt sample — the
// classic Cristian/NTP filter: the tightest round trip carries the
// least-smeared midpoint.  A mid-window offset jump (e.g. a suspended VM)
// is absorbed as old samples age out of the window.
//
// Rebasing is deliberately paranoid: whatever the offset estimate or a
// hostile peer claims, a rebased interval is clamped into the observed leg
// window, so grafted spans can never carry negative durations or escape
// their parent — Trace::well_formed() stays true by construction.
//
// Header-only and dependency-free on purpose: the edge-case battery in
// tests/test_obs.cpp drives this logic without linking the net layer.

#include <cstddef>
#include <cstdint>
#include <deque>

namespace mmir::net {

/// One request/response timing observation.  t0/t1 are local (router)
/// steady-clock ns; s_recv/s_send are remote (server) steady-clock ns.
struct ClockSample {
  std::int64_t t0 = 0;      ///< request written to the socket
  std::int64_t t1 = 0;      ///< reply fully read off the socket
  std::int64_t s_recv = 0;  ///< server: request decoded
  std::int64_t s_send = 0;  ///< server: reply about to be written
};

/// Wire-only round trip of a sample: total leg time minus the time the
/// server held the request.  Negative (clock torn mid-sample, or a hostile
/// reply) clamps to 0 — such a sample wins the min-rtt filter only if
/// nothing better exists.
[[nodiscard]] inline std::int64_t sample_rtt_ns(const ClockSample& s) noexcept {
  const std::int64_t rtt = (s.t1 - s.t0) - (s.s_send - s.s_recv);
  return rtt < 0 ? 0 : rtt;
}

/// Midpoint-difference offset of one sample: server_time + offset ≈
/// router_time.  Can legitimately be zero or negative (the server's clock
/// may be ahead of the router's).
[[nodiscard]] inline std::int64_t sample_offset_ns(const ClockSample& s) noexcept {
  const std::int64_t local_mid = s.t0 + (s.t1 - s.t0) / 2;
  const std::int64_t remote_mid = s.s_recv + (s.s_send - s.s_recv) / 2;
  return local_mid - remote_mid;
}

/// Sliding-window minimum-rtt offset estimator, one per connection target.
class ClockOffsetEstimator {
 public:
  static constexpr std::size_t kWindow = 64;

  void add_sample(const ClockSample& sample) {
    window_.push_back(sample);
    while (window_.size() > kWindow) window_.pop_front();
  }

  [[nodiscard]] bool known() const noexcept { return !window_.empty(); }
  [[nodiscard]] std::size_t sample_count() const noexcept { return window_.size(); }

  /// Offset of the tightest-rtt sample in the window; 0 when unknown.
  [[nodiscard]] std::int64_t offset_ns() const noexcept {
    const ClockSample* best = best_sample();
    return best == nullptr ? 0 : sample_offset_ns(*best);
  }

  /// rtt of the sample the estimate rests on; 0 when unknown.
  [[nodiscard]] std::int64_t rtt_ns() const noexcept {
    const ClockSample* best = best_sample();
    return best == nullptr ? 0 : sample_rtt_ns(*best);
  }

 private:
  [[nodiscard]] const ClockSample* best_sample() const noexcept {
    const ClockSample* best = nullptr;
    for (const ClockSample& s : window_) {
      if (best == nullptr || sample_rtt_ns(s) < sample_rtt_ns(*best)) best = &s;
    }
    return best;
  }

  std::deque<ClockSample> window_;
};

/// A remote interval translated into local-trace-relative coordinates.
struct RebasedInterval {
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
};

/// Rebases a remote span interval into the local trace's relative timeline
/// and clamps it into [window_start_ns, window_end_ns] (the enclosing leg
/// span).  `remote_start_ns` is remote steady-clock absolute ns;
/// `local_epoch_ns` is the local trace's start_epoch_ns().  Clamping
/// guarantees: start within the window, duration never negative, end never
/// past the window — regardless of the offset estimate's sign or error and
/// of hostile remote timestamps.
[[nodiscard]] inline RebasedInterval rebase_interval(std::int64_t offset_ns,
                                                     std::uint64_t remote_start_ns,
                                                     std::uint64_t duration_ns,
                                                     std::uint64_t local_epoch_ns,
                                                     std::uint64_t window_start_ns,
                                                     std::uint64_t window_end_ns) noexcept {
  if (window_end_ns < window_start_ns) window_end_ns = window_start_ns;
  std::int64_t rel =
      static_cast<std::int64_t>(remote_start_ns) + offset_ns - static_cast<std::int64_t>(local_epoch_ns);
  if (rel < static_cast<std::int64_t>(window_start_ns)) rel = static_cast<std::int64_t>(window_start_ns);
  if (rel > static_cast<std::int64_t>(window_end_ns)) rel = static_cast<std::int64_t>(window_end_ns);
  const std::uint64_t start = static_cast<std::uint64_t>(rel);
  std::uint64_t end = duration_ns > window_end_ns - start ? window_end_ns : start + duration_ns;
  if (end < start) end = start;
  return RebasedInterval{start, end - start};
}

/// Namespaces a remote server's trace/query id into the router's id space:
/// high bit marks "remote", bits 48..62 carry the shard ordinal, the low 48
/// bits the server-local id.  Embedded-server trace ids (small monotone
/// integers) and router trace ids can therefore never collide with a
/// namespaced remote id in a merged dump, and two shards' ids never collide
/// with each other.
[[nodiscard]] inline std::uint64_t namespaced_remote_id(std::uint32_t shard,
                                                        std::uint64_t remote_id) noexcept {
  return (1ULL << 63) | (static_cast<std::uint64_t>(shard & 0x7FFFu) << 48) |
         (remote_id & ((1ULL << 48) - 1));
}

}  // namespace mmir::net
