#pragma once
// Scatter-gather over shard-server *processes* (DESIGN.md §6g): the Router
// fans one raster query out to N shard servers over the wire protocol,
// collects per-shard partials, and merges them under the same max-of-bounds
// rule as the in-process sharded executors (merge_shard_partials) — so with
// every leg healthy the answer is byte-identical to the monolithic serial
// run, and with legs failing it degrades exactly the way an in-process
// fault-domain execution does.
//
// Every wire-layer misfortune maps onto the existing Degraded/Shed status
// algebra, mirroring engine/shard_exec.cpp's fault path leg for leg:
//
//   * connect failure, kError reply, truncated/corrupt/version-skewed frame
//     -> transient fault: retried under the policy's capped backoff, and a
//        leg that exhausts its attempts contributes an empty kDegraded
//        partial whose missed bound is the *whole-shard* score bound — the
//        merged bound widens, the certified prefix shortens, soundness holds;
//   * per-attempt timeout -> retried, then kept as kDegraded + widened bound;
//   * a server kShed reply -> back-pressure, retried like a transient fault;
//   * hedging: a straggler primary leg gets a speculative duplicate after
//     hedge_delay; first clean reply wins and cancels the sibling.
//
// A slow or dead shard server therefore degrades its shard's bound — it
// never blocks the query and never poisons the merge with a truncated
// status.  Whole-shard bounds come from a cached kDescribe exchange (the
// shard's per-band ranges); when even describe failed, the bound is +inf —
// maximally wide, still sound.
//
// The op budget splits *statically* across legs (remote processes share no
// atomic budget), which only re-slices where a budgeted scan stops — each
// leg still reports a sound bound for whatever it skipped.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "archive/sharded.hpp"
#include "core/query_context.hpp"
#include "engine/fault_domain.hpp"
#include "engine/shard_exec.hpp"
#include "linear/model.hpp"
#include "net/clock_sync.hpp"
#include "net/wire.hpp"
#include "obs/stats_server.hpp"
#include "util/cost.hpp"

namespace mmir::obs {
class MetricsRegistry;
}  // namespace mmir::obs

namespace mmir::net {

struct RouterConfig {
  /// Shard id -> loopback port of the server answering for that shard.
  std::vector<std::uint16_t> ports;
  /// The same fault envelope the in-process executors take: per-leg
  /// timeout, attempt budget, backoff, hedging.
  ShardFaultPolicy policy;
  /// Deterministic wire-fault source (delays, aborted attempts, corrupted
  /// reply frames); borrowed, may be null.
  ShardChaos* chaos = nullptr;
  /// engine_net_* counters; null disables metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-attempt deadline when policy.shard_timeout is 0 — a remote leg
  /// must never wait forever on a dead socket.
  std::chrono::milliseconds default_leg_timeout{2000};
};

/// One distributed raster query.
struct RouterQuery {
  std::uint64_t archive_id = 0;
  /// 0 = one shard per configured port.
  std::uint32_t shard_count = 0;
  ShardPolicy policy = ShardPolicy::kRowBands;
  ShardScanMode mode = ShardScanMode::kCombined;
  const LinearModel* model = nullptr;
  std::size_t k = 10;
  std::uint64_t op_budget = std::numeric_limits<std::uint64_t>::max();
};

struct RouterResult {
  ShardedTopK result;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Router {
 public:
  explicit Router(RouterConfig config);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Scatter-gathers `query` over the configured shard servers.  Blocks
  /// until every leg resolved (reply, exhausted attempts, or global stop);
  /// ctx carries the global deadline/cancel/span exactly as for in-process
  /// execution.  EXPLAIN sees a "router" stage with one "shard_<i>" child
  /// per remote leg and a "gather" child, the same shape as the in-process
  /// scatter-gather.
  [[nodiscard]] RouterResult execute(const RouterQuery& query, QueryContext& ctx,
                                     CostMeter& meter);

  /// Rolling-window health of the remote legs, one line per shard — the
  /// /healthz hook, mirroring QueryEngine::health() for remote execution.
  [[nodiscard]] obs::HealthReport health() const;

  /// Federated fleet telemetry (the /fleetz hook): polls every configured
  /// shard server with a kStats message and renders one Prometheus page —
  /// per-shard up/qps/p99/shed plus the router's own leg-health view, every
  /// sample labeled {shard="i",port="p"}.  qps derives from the
  /// queries_served delta between successive calls (0 on the first scrape).
  /// A server that does not answer (down, or a v1 build without kStats)
  /// renders as fleet_up 0 — the page never fails outright.
  [[nodiscard]] std::string fleet_prometheus();

  /// Current clock-offset estimate toward the server on `port`
  /// (server_time + offset = router_time); 0 when no traced reply has been
  /// seen yet.  Test hook for the stitching battery.
  [[nodiscard]] std::int64_t clock_offset_ns(std::uint16_t port) const;

 private:
  struct LegEvent {
    std::uint32_t shard = 0;
    std::uint32_t timeouts = 0;
    std::uint32_t retries = 0;
    bool failed = false;
  };

  /// Cached kDescribe exchange; a ShardDescription with known=false means
  /// the describe failed (not cached — retried on the next query).
  [[nodiscard]] ShardDescription describe_shard(std::uint64_t archive_id,
                                                std::uint32_t shard_count, std::uint8_t policy,
                                                std::uint32_t shard);
  void record_health(const std::vector<LegEvent>& events);
  /// Feeds one traced reply's timing sample into the port's offset
  /// estimator and returns the refined estimate.
  [[nodiscard]] std::int64_t update_clock(std::uint16_t port, const ClockSample& sample);

  RouterConfig config_;
  std::atomic<std::uint64_t> query_seq_{1};

  mutable std::mutex meta_mutex_;
  std::map<std::tuple<std::uint64_t, std::uint32_t, std::uint8_t, std::uint32_t>,
           ShardDescription>
      meta_cache_;

  mutable std::mutex health_mutex_;
  std::deque<LegEvent> health_window_;

  mutable std::mutex clock_mutex_;
  std::map<std::uint16_t, ClockOffsetEstimator> clock_;

  /// Previous kStats scrape per port, for the /fleetz qps delta.
  struct FleetPrev {
    std::uint64_t queries_served = 0;
    std::chrono::steady_clock::time_point at{};
    bool valid = false;
  };
  std::mutex fleet_mutex_;
  std::map<std::uint16_t, FleetPrev> fleet_prev_;
};

}  // namespace mmir::net
