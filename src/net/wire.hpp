#pragma once
// Length-prefixed binary wire protocol for shard serving (DESIGN.md §6g).
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "MMW1"
//   4       2     protocol version (kWireVersion)
//   6       2     message type (MsgType)
//   8       4     payload length  (<= kMaxFramePayload)
//   12      N     payload
//   12+N    8     FNV-1a checksum of the payload (util/fnv.hpp — the same
//                 scheme as the archive/io on-disk trailer)
//
// Every malformation is a *typed* fault (WireFault), never a hang or a
// crash: a truncated frame, an oversized length prefix, a checksum mismatch,
// or version skew throws WireError, which a router leg maps onto the
// Degraded arm of the shard fault algebra and a shard server answers with a
// kError frame.  Doubles travel as raw IEEE-754 bits (std::bit_cast), so
// scores, bounds (including ±inf), and weights survive the round trip
// byte-identically — the cross-process parity oracle depends on it.

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/shard_exec.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/interval.hpp"

namespace mmir::net {

inline constexpr char kWireMagic[4] = {'M', 'M', 'W', '1'};
/// v2 adds optional trace-context fields to kQuery/kResult payloads and the
/// kStats/kStatsReply message pair.  The additions are presence-based (they
/// sit after every v1 field), so a v2 build accepts v1 frames and payloads
/// unchanged: a peer that never heard of tracing simply yields an untraced
/// leg, never an error.
inline constexpr std::uint16_t kWireVersion = 2;
inline constexpr std::uint16_t kWireMinVersion = 1;
/// Hostile-length guard: a frame advertising more than this is rejected
/// before any allocation happens.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::size_t kFrameTrailerBytes = 8;

enum class MsgType : std::uint16_t {
  kQuery = 1,      ///< router -> shard server: one shard's scan
  kResult = 2,     ///< shard server -> router: the shard partial
  kError = 3,      ///< shard server -> router: typed refusal
  kPing = 4,       ///< liveness probe
  kPong = 5,
  kDescribe = 6,   ///< router -> shard server: shard metadata request
  kShardInfo = 7,  ///< shard server -> router: bounds/pixel counts
  kStats = 8,      ///< router -> shard server: metrics snapshot request (v2)
  kStatsReply = 9, ///< shard server -> router: MetricsRegistry snapshot (v2)
};

/// What went wrong at the wire layer; each value maps to one robustness
/// test and to one router leg disposition.
enum class WireFault : std::uint8_t {
  kNone = 0,
  kClosed,             ///< peer gone before a frame started (EOF/timeout)
  kTruncated,          ///< frame started but ended early
  kBadMagic,
  kOversized,          ///< length prefix beyond kMaxFramePayload
  kVersionSkew,
  kChecksumMismatch,
  kMalformed,          ///< payload did not parse as its message type
};

[[nodiscard]] const char* to_string(WireFault fault) noexcept;

class WireError : public Error {
 public:
  WireError(WireFault fault, const std::string& what)
      : Error("wire: " + what), fault_(fault) {}
  [[nodiscard]] WireFault fault() const noexcept { return fault_; }

 private:
  WireFault fault_;
};

struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
  /// Header version the peer stamped; in [kWireMinVersion, kWireVersion].
  std::uint16_t version = kWireVersion;
};

/// Little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s);
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian payload parser; any overrun throws
/// WireError(kMalformed).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str();
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Assembles a complete frame (header + payload + checksum trailer).  The
/// version parameter exists so tests (and a future downgrade path) can craft
/// frames an old peer would emit; production paths use the default.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(MsgType type,
                                                     std::span<const std::uint8_t> payload,
                                                     std::uint16_t version = kWireVersion);

/// Parses and validates a complete frame buffer; throws WireError on bad
/// magic, version skew, oversized/oversold length, truncation, or checksum
/// mismatch.  Exposed separately from the socket path so the robustness
/// suite can fuzz byte buffers directly.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> bytes);

/// Reads one raw frame off the socket (header first, then exactly the
/// advertised payload + trailer).  Throws WireError: kClosed when no frame
/// starts within the timeout (or the peer hung up), kTruncated when a frame
/// starts but the peer dies mid-frame, and the header faults eagerly.  The
/// returned buffer is the full frame, decode_frame-ready — the router's
/// chaos hook flips bytes in this buffer to model wire corruption.
[[nodiscard]] std::vector<std::uint8_t> read_frame_bytes(
    Socket& sock, std::chrono::milliseconds timeout,
    const std::atomic<bool>* cancel = nullptr);

/// read_frame_bytes + decode_frame.
[[nodiscard]] Frame read_frame(Socket& sock, std::chrono::milliseconds timeout,
                               const std::atomic<bool>* cancel = nullptr);

/// Encodes and writes one frame; false on socket failure.
[[nodiscard]] bool write_frame(Socket& sock, MsgType type,
                               std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// Messages

/// One shard's scan request.  The model travels as raw weights/bias/names so
/// the server rebuilds LinearModel bit-identically; progressive stage order
/// derives from the *registered* per-band ranges on the server (the client
/// registers the same ranges, so ordering — and therefore the answer —
/// matches the monolithic run exactly).
struct QuerySpec {
  std::uint64_t query_id = 0;
  std::uint64_t archive_id = 0;
  std::uint32_t shard_count = 1;
  std::uint8_t shard_policy = 0;  ///< archive ShardPolicy
  std::uint32_t shard_id = 0;
  std::uint8_t mode = 0;  ///< engine ShardScanMode
  std::uint32_t k = 1;
  std::uint64_t op_budget = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t timeout_ns = 0;  ///< 0 = no server-side deadline
  double bias = 0.0;
  std::vector<double> weights;
  std::vector<std::string> names;
  /// v2 trace context: the router's trace id (0 = untraced request — also
  /// what a v1 payload decodes to) and the span index the remote scan should
  /// consider its logical parent.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

[[nodiscard]] std::vector<std::uint8_t> encode_query(const QuerySpec& spec);
[[nodiscard]] QuerySpec decode_query(std::span<const std::uint8_t> payload);

/// Hostile-payload caps for the serialized span tree: a reply advertising
/// more than this is kMalformed before any allocation happens.
inline constexpr std::uint32_t kMaxWireSpans = 4096;
inline constexpr std::uint32_t kMaxWireSpanAnnotations = 256;
inline constexpr std::uint32_t kWireNoParent = 0xFFFFFFFFu;

/// One serialized span of the server's trace (obs::SpanRecord shape;
/// start_ns is relative to the server trace's start).
struct WireSpan {
  std::string name;
  std::uint32_t parent = kWireNoParent;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, double>> attrs;
  std::vector<std::pair<std::string, std::string>> notes;
};

/// The server-side trace a traced kResult carries back: the span tree plus
/// the monotonic timestamps the router's clock-offset estimator and the
/// wire/queue_wait/scan decomposition need.  All *_ns fields except the span
/// starts are server steady-clock nanoseconds since that clock's epoch.
struct WireTrace {
  std::uint64_t remote_trace_id = 0;  ///< server Tracer id (pre-namespacing)
  std::uint64_t server_recv_ns = 0;   ///< request decoded on the server
  std::uint64_t server_send_ns = 0;   ///< reply about to be written
  std::uint64_t queue_wait_ns = 0;    ///< scheduler admission -> dispatch
  std::uint64_t exec_ns = 0;          ///< dispatch -> scan completion
  std::uint64_t trace_start_ns = 0;   ///< epoch of the spans' start_ns
  std::vector<WireSpan> spans;
};

/// One shard's partial answer plus the CostMeter counters and the §4.2
/// efficiency inputs EXPLAIN reconciles at the router.
struct WirePartial {
  std::uint64_t query_id = 0;
  ShardPartial partial;
  std::uint64_t meter_points = 0;
  std::uint64_t meter_ops = 0;
  std::uint64_t meter_bytes = 0;
  std::uint64_t meter_pruned = 0;
  std::uint64_t scan_ops = 0;
  std::uint64_t model_terms = 0;
  /// v2: present when the request carried a trace id AND the server traced
  /// the scan; absent (false) from v1 peers — the leg renders untraced.
  bool has_trace = false;
  WireTrace trace;
};

[[nodiscard]] std::vector<std::uint8_t> encode_partial(const WirePartial& partial);
[[nodiscard]] WirePartial decode_partial(std::span<const std::uint8_t> payload);

/// Shard metadata request: which slice of which layout.
struct DescribeSpec {
  std::uint64_t archive_id = 0;
  std::uint32_t shard_count = 1;
  std::uint8_t shard_policy = 0;
  std::uint32_t shard_id = 0;
};

[[nodiscard]] std::vector<std::uint8_t> encode_describe(const DescribeSpec& spec);
[[nodiscard]] DescribeSpec decode_describe(std::span<const std::uint8_t> payload);

/// Shard metadata: enough for the router to compute a sound whole-shard
/// score bound for a dead leg without holding the archive locally.
struct ShardDescription {
  bool known = false;          ///< archive_id registered on the server
  std::uint64_t pixel_count = 0;
  std::uint64_t tile_count = 0;
  std::uint64_t archive_pixels = 0;  ///< whole archive (§4.2 total_pixels)
  std::vector<Interval> band_ranges;  ///< per-band hull of the shard's tiles
};

[[nodiscard]] std::vector<std::uint8_t> encode_shard_info(const ShardDescription& info);
[[nodiscard]] ShardDescription decode_shard_info(std::span<const std::uint8_t> payload);

/// Typed refusal (unknown archive, bad shard id, shed, ...).
struct WireErrorMsg {
  std::uint32_t code = 0;
  std::string message;
};

/// Server-side error codes carried in kError frames.
inline constexpr std::uint32_t kErrUnknownArchive = 1;
inline constexpr std::uint32_t kErrBadRequest = 2;
inline constexpr std::uint32_t kErrShed = 3;
inline constexpr std::uint32_t kErrInternal = 4;

[[nodiscard]] std::vector<std::uint8_t> encode_error(const WireErrorMsg& err);
[[nodiscard]] WireErrorMsg decode_error(std::span<const std::uint8_t> payload);

/// Hostile-payload caps for a kStatsReply.
inline constexpr std::uint32_t kMaxWireMetrics = 4096;
inline constexpr std::uint32_t kMaxWireHistogramBuckets = 512;

/// One server's fleet-telemetry snapshot (kStatsReply payload): its
/// MetricsRegistry snapshot plus the serving counters the /fleetz federation
/// page derives qps from.  A kStats request carries an empty payload.
struct WireStats {
  std::uint64_t queries_served = 0;
  std::uint64_t uptime_ns = 0;  ///< server steady-clock time since start()
  obs::MetricsSnapshot snapshot;
};

[[nodiscard]] std::vector<std::uint8_t> encode_stats(const WireStats& stats);
[[nodiscard]] WireStats decode_stats(std::span<const std::uint8_t> payload);

}  // namespace mmir::net
