#pragma once
// One process's side of distributed shard serving (DESIGN.md §6g): a
// ShardServer wraps a local QueryEngine plus the archives it has been handed
// and answers wire-protocol queries for *one shard slice at a time* over
// loopback TCP.
//
// The server is deliberately archive-shaped, not query-shaped: it registers
// whole TiledArchives and materializes ShardedArchive layouts lazily per
// (shard_count, policy) request, so one server process can serve any shard of
// any registered layout.  A production deployment pins a server to one shard
// id via ShardServerConfig::shard_id; the tests leave it open (kAnyShard) so
// a small process fleet can cover every layout in the parity battery.
//
// Scans run through the engine's scheduler (ShardScanJob), so remote queries
// get the same admission control, op budgets, deadlines, and shedding as
// local ones — a shed scan comes back as a kResult frame with status kShed,
// which the router treats as back-pressure and retries.
//
// Robustness contract (tests/test_net_wire.cpp): a malformed, truncated,
// corrupt, oversized, or version-skewed frame never hangs or kills the
// server.  The connection answers with a typed kError frame when it can,
// then closes (the stream is desynced past repair); the accept loop and all
// other connections keep serving.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "archive/sharded.hpp"
#include "archive/tiled.hpp"
#include "engine/scheduler.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace mmir::net {

/// shard_id pin wildcard: the server answers for any shard of any layout.
inline constexpr std::uint32_t kAnyShard = 0xFFFFFFFFu;

struct ShardServerConfig {
  /// TCP port to bind (loopback only); 0 = kernel-assigned ephemeral port,
  /// read it back via port().
  std::uint16_t port = 0;
  /// Only serve this shard id; queries for other shards get kErrBadRequest.
  /// kAnyShard (default) serves every shard of every layout.
  std::uint32_t shard_id = kAnyShard;
  /// The embedded engine the scans run through.
  EngineConfig engine;
  /// Per-connection idle read deadline; an idle client is disconnected (it
  /// can reconnect).  <= 0 waits forever.
  std::chrono::milliseconds read_timeout{30000};
};

class ShardServer {
 public:
  explicit ShardServer(ShardServerConfig config = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Makes `archive` servable under `archive_id`.  `progressive_ranges` are
  /// the per-band ranges that drive progressive stage ordering — they MUST
  /// equal the ranges the router's client used locally, or stage order (and
  /// therefore budgeted-scan answers) diverges from the monolithic run.
  /// The archive is borrowed and must outlive the server.
  void register_archive(std::uint64_t archive_id, const TiledArchive* archive,
                        std::vector<Interval> progressive_ranges);

  /// Binds the port and starts the accept thread; false when the socket
  /// layer is unavailable or the port cannot be bound.
  [[nodiscard]] bool start();

  /// Stops accepting, joins every connection thread, closes the listener.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  /// The bound TCP port; -1 when not running.
  [[nodiscard]] int port() const noexcept;
  /// Queries answered with a kResult frame since start.
  [[nodiscard]] std::uint64_t queries_served() const noexcept;

  /// Routing table, exposed for tests: one request frame in, one reply frame
  /// out (exactly what a connection would write back).
  [[nodiscard]] Frame handle(const Frame& request);

 private:
  struct ArchiveEntry {
    const TiledArchive* archive = nullptr;
    std::vector<Interval> ranges;
    /// Lazily built layouts keyed by (shard_count, policy).
    std::map<std::pair<std::uint32_t, std::uint8_t>, std::unique_ptr<ShardedArchive>> layouts;
  };
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  [[nodiscard]] Frame handle_query(std::span<const std::uint8_t> payload);
  [[nodiscard]] Frame handle_describe(std::span<const std::uint8_t> payload);
  [[nodiscard]] Frame handle_stats();
  /// Finds/creates the (count, policy) layout of a registered entry; throws
  /// Error on an invalid policy byte.
  [[nodiscard]] const ShardedArchive* layout_for(ArchiveEntry& entry, std::uint32_t count,
                                                 std::uint8_t policy);
  void accept_loop();
  void serve_connection(Socket sock, Conn* conn);
  void reap_connections(bool all);

  ShardServerConfig config_;
  /// Owned tracer backing remote-scan traces when the caller's EngineConfig
  /// did not supply one: every served scan gets a span tree the reply can
  /// carry back, with zero setup on the embedding side.  Must be declared
  /// before engine_ (the engine config points at it).
  obs::Tracer tracer_{64};
  std::chrono::steady_clock::time_point started_at_{std::chrono::steady_clock::now()};
  QueryEngine engine_;
  std::mutex archives_mutex_;
  std::map<std::uint64_t, ArchiveEntry> archives_;

  Listener listener_;
  std::atomic<bool> stop_{true};
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<std::uint64_t> queries_served_{0};
};

}  // namespace mmir::net
