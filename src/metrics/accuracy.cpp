#include "metrics/accuracy.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/topk.hpp"

namespace mmir {

namespace {

void check_same_shape(const Grid& a, const Grid& b) {
  MMIR_EXPECTS(a.width() == b.width() && a.height() == b.height());
}

}  // namespace

ErrorRates error_rates(const Grid& risk, const Grid& events, double threshold) {
  check_same_shape(risk, events);
  std::size_t zero_cells = 0;
  std::size_t pos_cells = 0;
  std::size_t miss_hits = 0;
  std::size_t false_hits = 0;
  const auto risk_cells = risk.flat();
  const auto event_cells = events.flat();
  for (std::size_t i = 0; i < risk_cells.size(); ++i) {
    if (event_cells[i] > 0.0) {
      ++pos_cells;
      if (risk_cells[i] < threshold) ++false_hits;
    } else {
      ++zero_cells;
      if (risk_cells[i] > threshold) ++miss_hits;
    }
  }
  ErrorRates rates;
  const auto total = static_cast<double>(risk_cells.size());
  rates.frac_zero = static_cast<double>(zero_cells) / total;
  rates.frac_pos = static_cast<double>(pos_cells) / total;
  rates.p_m = zero_cells > 0 ? static_cast<double>(miss_hits) / static_cast<double>(zero_cells) : 0.0;
  rates.p_f = pos_cells > 0 ? static_cast<double>(false_hits) / static_cast<double>(pos_cells) : 0.0;
  return rates;
}

double total_cost(const Grid& risk, const Grid& events, const Grid& weights, double threshold,
                  double cost_miss, double cost_false_alarm) {
  check_same_shape(risk, events);
  check_same_shape(risk, weights);
  const auto risk_cells = risk.flat();
  const auto event_cells = events.flat();
  const auto weight_cells = weights.flat();
  double ct = 0.0;
  for (std::size_t i = 0; i < risk_cells.size(); ++i) {
    double cell_cost = 0.0;
    if (event_cells[i] > 0.0) {
      if (risk_cells[i] < threshold) cell_cost = cost_false_alarm;
    } else {
      if (risk_cells[i] > threshold) cell_cost = cost_miss;
    }
    ct += weight_cells[i] * cell_cost;
  }
  return ct;
}

PrecisionRecall precision_recall_at_k(const Grid& risk, const Grid& events, std::size_t k) {
  check_same_shape(risk, events);
  MMIR_EXPECTS(k > 0);
  TopK<std::size_t> top(k);
  const auto risk_cells = risk.flat();
  for (std::size_t i = 0; i < risk_cells.size(); ++i) top.offer(risk_cells[i], i);

  PrecisionRecall pr;
  pr.k = std::min(k, risk_cells.size());
  const auto event_cells = events.flat();
  for (double occurrences : event_cells) {
    if (occurrences > 0.0) ++pr.relevant;
  }
  for (const auto& entry : top.take_sorted()) {
    if (event_cells[entry.item] > 0.0) ++pr.retrieved_correct;
  }
  pr.precision = static_cast<double>(pr.retrieved_correct) / static_cast<double>(pr.k);
  pr.recall = pr.relevant > 0
                  ? static_cast<double>(pr.retrieved_correct) / static_cast<double>(pr.relevant)
                  : 0.0;
  return pr;
}

std::vector<ThresholdPoint> threshold_sweep(const Grid& risk, const Grid& events,
                                            const Grid& weights, double cost_miss,
                                            double cost_false_alarm, std::size_t steps) {
  MMIR_EXPECTS(steps >= 2);
  const OnlineStats stats = risk.stats();
  std::vector<ThresholdPoint> sweep;
  sweep.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const double t = stats.min() + (stats.max() - stats.min()) * static_cast<double>(s) /
                                       static_cast<double>(steps - 1);
    ThresholdPoint point;
    point.threshold = t;
    point.rates = error_rates(risk, events, t);
    point.cost = total_cost(risk, events, weights, t, cost_miss, cost_false_alarm);
    sweep.push_back(point);
  }
  return sweep;
}

ThresholdPoint best_threshold(const std::vector<ThresholdPoint>& sweep) {
  MMIR_EXPECTS(!sweep.empty());
  const auto it = std::min_element(sweep.begin(), sweep.end(),
                                   [](const ThresholdPoint& a, const ThresholdPoint& b) {
                                     return a.cost < b.cost;
                                   });
  return *it;
}

}  // namespace mmir
