#pragma once
// Model-accuracy metrics, transcribing paper §4.1 exactly.
//
//   Pm(x,y) = Prob[ R(x,y) > T | O(x,y) = 0 ]
//   Pf(x,y) = Prob[ R(x,y) < T | O(x,y) > 0 ]
//   C(x,y)  = cm·Pm·P[O=0] + cf·Pf·P[O>0]
//   CT      = Σ w(x,y)·C(x,y)
//
// Note: the paper's prose calls "misses" the high-risk-regions-considered-low
// case, while its Pm formula conditions on O=0 (the false-alarm case under
// the usual naming).  We implement the *equations* verbatim and keep the
// paper's symbol names; EXPERIMENTS.md records the prose/equation mismatch.
//
// With one observed realization per location the conditional probabilities
// reduce to indicators, so the empirical rates below are frequencies over
// the region, and C(x,y) is the per-cell indicator cost.
//
// Top-K accuracy follows the paper: "the precision is defined as the
// percentage of retrieved results that are correct, while the recall is the
// percentage of correct results that are retrieved.  The correct results are
// those locations where O(x,y) > 0 … the top-K retrieval is based on the
// ordering of R(x,y)."

#include <cstddef>
#include <vector>

#include "data/grid.hpp"

namespace mmir {

/// Empirical §4.1 error rates at decision threshold T.
struct ErrorRates {
  double p_m = 0.0;       ///< fraction of O==0 cells with R > T
  double p_f = 0.0;       ///< fraction of O>0 cells with R < T
  double frac_zero = 0.0; ///< P[O = 0] over the region
  double frac_pos = 0.0;  ///< P[O > 0] over the region
};

[[nodiscard]] ErrorRates error_rates(const Grid& risk, const Grid& events, double threshold);

/// Weighted total cost CT = Σ w·(cm·1[R>T ∧ O=0] + cf·1[R<T ∧ O>0]).
[[nodiscard]] double total_cost(const Grid& risk, const Grid& events, const Grid& weights,
                                double threshold, double cost_miss, double cost_false_alarm);

/// Precision / recall of retrieving the top-k cells by R(x,y).
struct PrecisionRecall {
  std::size_t k = 0;
  std::size_t retrieved_correct = 0;  ///< top-k cells with O > 0
  std::size_t relevant = 0;           ///< all cells with O > 0
  double precision = 0.0;
  double recall = 0.0;
};

[[nodiscard]] PrecisionRecall precision_recall_at_k(const Grid& risk, const Grid& events,
                                                    std::size_t k);

/// One row of a threshold sweep (the §4.1 tradeoff curve).
struct ThresholdPoint {
  double threshold = 0.0;
  ErrorRates rates;
  double cost = 0.0;  ///< CT at this threshold
};

/// Sweeps `steps` thresholds across the risk range (inclusive of min/max).
[[nodiscard]] std::vector<ThresholdPoint> threshold_sweep(const Grid& risk, const Grid& events,
                                                          const Grid& weights, double cost_miss,
                                                          double cost_false_alarm,
                                                          std::size_t steps);

/// The threshold of the sweep minimizing CT (ties: the smallest threshold).
[[nodiscard]] ThresholdPoint best_threshold(const std::vector<ThresholdPoint>& sweep);

}  // namespace mmir
