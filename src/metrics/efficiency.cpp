#include "metrics/efficiency.hpp"

#include <ostream>

namespace mmir {

namespace {

double safe_ratio(double num, double den) noexcept { return den > 0.0 ? num / den : 1.0; }

}  // namespace

EfficiencyReport efficiency_report(std::string label, const CostMeter& baseline,
                                   const CostMeter& model_only, const CostMeter& combined) {
  EfficiencyReport report;
  report.label = std::move(label);
  report.pm = safe_ratio(static_cast<double>(baseline.ops()),
                         static_cast<double>(model_only.ops()));
  // pd isolates the data-representation leg: how much *additional* reduction
  // the combined run achieves beyond the model-only run.
  report.measured_speedup = safe_ratio(static_cast<double>(baseline.ops()),
                                       static_cast<double>(combined.ops()));
  report.pd = safe_ratio(report.measured_speedup, report.pm);
  return report;
}

std::ostream& operator<<(std::ostream& os, const EfficiencyReport& report) {
  os << report.label << ": pm=" << report.pm << " pd=" << report.pd
     << " predicted=" << report.predicted_speedup() << "x measured=" << report.measured_speedup
     << "x";
  return os;
}

}  // namespace mmir
