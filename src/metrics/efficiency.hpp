#pragma once
// Model-efficiency reporting, transcribing paper §4.2:
//
//   sequential cost        O(n·N)
//   progressive cost       O(n·N / (pm·pd))
//
// where pm is the complexity-reduction ratio from progressive *model*
// execution and pd the ratio from progressive *data* representation.  The
// helpers below derive pm / pd / combined ratios from CostMeters so every
// benchmark reports the same quantities the paper defines.

#include <iosfwd>
#include <string>

#include "util/cost.hpp"

namespace mmir {

/// §4.2 decomposition of a progressive run against its sequential baseline.
struct EfficiencyReport {
  std::string label;
  double pm = 1.0;  ///< model-execution reduction (ops ratio)
  double pd = 1.0;  ///< data-representation reduction (points ratio)
  double measured_speedup = 1.0;  ///< baseline ops / combined ops

  /// The §4.2 prediction O(nN)/O(nN/(pm·pd)) = pm·pd.
  [[nodiscard]] double predicted_speedup() const noexcept { return pm * pd; }
};

/// Builds the report from three meters: the full sequential run, a run using
/// only progressive model execution, and the combined progressive run.
/// pm = baseline.ops / model_only.ops, pd = baseline.points / combined.points
/// scaled by the model-only ratio, measured = baseline.ops / combined.ops.
[[nodiscard]] EfficiencyReport efficiency_report(std::string label, const CostMeter& baseline,
                                                 const CostMeter& model_only,
                                                 const CostMeter& combined);

std::ostream& operator<<(std::ostream& os, const EfficiencyReport& report);

}  // namespace mmir
