file(REMOVE_RECURSE
  "CMakeFiles/test_index_onion.dir/test_index_onion.cpp.o"
  "CMakeFiles/test_index_onion.dir/test_index_onion.cpp.o.d"
  "test_index_onion"
  "test_index_onion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_onion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
