# Empty compiler generated dependencies file for test_index_onion.
# This may be replaced when dependencies are built.
