file(REMOVE_RECURSE
  "CMakeFiles/test_sproc.dir/test_sproc.cpp.o"
  "CMakeFiles/test_sproc.dir/test_sproc.cpp.o.d"
  "test_sproc"
  "test_sproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
