# Empty compiler generated dependencies file for test_sproc.
# This may be replaced when dependencies are built.
