# Empty compiler generated dependencies file for test_index_hull.
# This may be replaced when dependencies are built.
