file(REMOVE_RECURSE
  "CMakeFiles/test_index_hull.dir/test_index_hull.cpp.o"
  "CMakeFiles/test_index_hull.dir/test_index_hull.cpp.o.d"
  "test_index_hull"
  "test_index_hull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_hull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
