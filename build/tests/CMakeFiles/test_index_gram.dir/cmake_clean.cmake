file(REMOVE_RECURSE
  "CMakeFiles/test_index_gram.dir/test_index_gram.cpp.o"
  "CMakeFiles/test_index_gram.dir/test_index_gram.cpp.o.d"
  "test_index_gram"
  "test_index_gram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_gram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
