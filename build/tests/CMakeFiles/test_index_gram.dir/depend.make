# Empty dependencies file for test_index_gram.
# This may be replaced when dependencies are built.
