# Empty dependencies file for test_index_spatial.
# This may be replaced when dependencies are built.
