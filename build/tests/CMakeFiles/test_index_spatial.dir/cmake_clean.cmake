file(REMOVE_RECURSE
  "CMakeFiles/test_index_spatial.dir/test_index_spatial.cpp.o"
  "CMakeFiles/test_index_spatial.dir/test_index_spatial.cpp.o.d"
  "test_index_spatial"
  "test_index_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
