file(REMOVE_RECURSE
  "libmmir_util.a"
)
