file(REMOVE_RECURSE
  "CMakeFiles/mmir_util.dir/cost.cpp.o"
  "CMakeFiles/mmir_util.dir/cost.cpp.o.d"
  "CMakeFiles/mmir_util.dir/matrix.cpp.o"
  "CMakeFiles/mmir_util.dir/matrix.cpp.o.d"
  "CMakeFiles/mmir_util.dir/rng.cpp.o"
  "CMakeFiles/mmir_util.dir/rng.cpp.o.d"
  "CMakeFiles/mmir_util.dir/stats.cpp.o"
  "CMakeFiles/mmir_util.dir/stats.cpp.o.d"
  "libmmir_util.a"
  "libmmir_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
