# Empty compiler generated dependencies file for mmir_util.
# This may be replaced when dependencies are built.
