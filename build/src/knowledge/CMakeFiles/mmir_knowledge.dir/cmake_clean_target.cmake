file(REMOVE_RECURSE
  "libmmir_knowledge.a"
)
