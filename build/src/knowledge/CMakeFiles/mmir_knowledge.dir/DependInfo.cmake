
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knowledge/hps.cpp" "src/knowledge/CMakeFiles/mmir_knowledge.dir/hps.cpp.o" "gcc" "src/knowledge/CMakeFiles/mmir_knowledge.dir/hps.cpp.o.d"
  "/root/repo/src/knowledge/strata.cpp" "src/knowledge/CMakeFiles/mmir_knowledge.dir/strata.cpp.o" "gcc" "src/knowledge/CMakeFiles/mmir_knowledge.dir/strata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmir_data.dir/DependInfo.cmake"
  "/root/repo/build/src/bayes/CMakeFiles/mmir_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/sproc/CMakeFiles/mmir_sproc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
