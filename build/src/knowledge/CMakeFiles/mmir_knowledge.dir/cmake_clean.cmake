file(REMOVE_RECURSE
  "CMakeFiles/mmir_knowledge.dir/hps.cpp.o"
  "CMakeFiles/mmir_knowledge.dir/hps.cpp.o.d"
  "CMakeFiles/mmir_knowledge.dir/strata.cpp.o"
  "CMakeFiles/mmir_knowledge.dir/strata.cpp.o.d"
  "libmmir_knowledge.a"
  "libmmir_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
