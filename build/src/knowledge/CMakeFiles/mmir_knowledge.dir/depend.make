# Empty dependencies file for mmir_knowledge.
# This may be replaced when dependencies are built.
