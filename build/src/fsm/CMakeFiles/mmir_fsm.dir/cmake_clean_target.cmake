file(REMOVE_RECURSE
  "libmmir_fsm.a"
)
