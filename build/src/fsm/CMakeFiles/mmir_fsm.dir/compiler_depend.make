# Empty compiler generated dependencies file for mmir_fsm.
# This may be replaced when dependencies are built.
