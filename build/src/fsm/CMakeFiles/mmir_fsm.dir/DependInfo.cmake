
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/dfa.cpp" "src/fsm/CMakeFiles/mmir_fsm.dir/dfa.cpp.o" "gcc" "src/fsm/CMakeFiles/mmir_fsm.dir/dfa.cpp.o.d"
  "/root/repo/src/fsm/distance.cpp" "src/fsm/CMakeFiles/mmir_fsm.dir/distance.cpp.o" "gcc" "src/fsm/CMakeFiles/mmir_fsm.dir/distance.cpp.o.d"
  "/root/repo/src/fsm/fire_ants.cpp" "src/fsm/CMakeFiles/mmir_fsm.dir/fire_ants.cpp.o" "gcc" "src/fsm/CMakeFiles/mmir_fsm.dir/fire_ants.cpp.o.d"
  "/root/repo/src/fsm/matcher.cpp" "src/fsm/CMakeFiles/mmir_fsm.dir/matcher.cpp.o" "gcc" "src/fsm/CMakeFiles/mmir_fsm.dir/matcher.cpp.o.d"
  "/root/repo/src/fsm/nfa.cpp" "src/fsm/CMakeFiles/mmir_fsm.dir/nfa.cpp.o" "gcc" "src/fsm/CMakeFiles/mmir_fsm.dir/nfa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmir_data.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mmir_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
