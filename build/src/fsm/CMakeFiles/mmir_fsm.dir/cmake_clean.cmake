file(REMOVE_RECURSE
  "CMakeFiles/mmir_fsm.dir/dfa.cpp.o"
  "CMakeFiles/mmir_fsm.dir/dfa.cpp.o.d"
  "CMakeFiles/mmir_fsm.dir/distance.cpp.o"
  "CMakeFiles/mmir_fsm.dir/distance.cpp.o.d"
  "CMakeFiles/mmir_fsm.dir/fire_ants.cpp.o"
  "CMakeFiles/mmir_fsm.dir/fire_ants.cpp.o.d"
  "CMakeFiles/mmir_fsm.dir/matcher.cpp.o"
  "CMakeFiles/mmir_fsm.dir/matcher.cpp.o.d"
  "CMakeFiles/mmir_fsm.dir/nfa.cpp.o"
  "CMakeFiles/mmir_fsm.dir/nfa.cpp.o.d"
  "libmmir_fsm.a"
  "libmmir_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
