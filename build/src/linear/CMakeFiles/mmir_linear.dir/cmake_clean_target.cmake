file(REMOVE_RECURSE
  "libmmir_linear.a"
)
