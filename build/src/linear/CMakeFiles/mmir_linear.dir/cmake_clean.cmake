file(REMOVE_RECURSE
  "CMakeFiles/mmir_linear.dir/model.cpp.o"
  "CMakeFiles/mmir_linear.dir/model.cpp.o.d"
  "CMakeFiles/mmir_linear.dir/progressive.cpp.o"
  "CMakeFiles/mmir_linear.dir/progressive.cpp.o.d"
  "CMakeFiles/mmir_linear.dir/regression.cpp.o"
  "CMakeFiles/mmir_linear.dir/regression.cpp.o.d"
  "libmmir_linear.a"
  "libmmir_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
