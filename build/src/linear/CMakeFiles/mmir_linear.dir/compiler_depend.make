# Empty compiler generated dependencies file for mmir_linear.
# This may be replaced when dependencies are built.
