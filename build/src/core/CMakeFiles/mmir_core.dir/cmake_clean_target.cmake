file(REMOVE_RECURSE
  "libmmir_core.a"
)
