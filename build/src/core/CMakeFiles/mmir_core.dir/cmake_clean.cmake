file(REMOVE_RECURSE
  "CMakeFiles/mmir_core.dir/classify.cpp.o"
  "CMakeFiles/mmir_core.dir/classify.cpp.o.d"
  "CMakeFiles/mmir_core.dir/progressive_exec.cpp.o"
  "CMakeFiles/mmir_core.dir/progressive_exec.cpp.o.d"
  "CMakeFiles/mmir_core.dir/raster_model.cpp.o"
  "CMakeFiles/mmir_core.dir/raster_model.cpp.o.d"
  "CMakeFiles/mmir_core.dir/retrieval.cpp.o"
  "CMakeFiles/mmir_core.dir/retrieval.cpp.o.d"
  "CMakeFiles/mmir_core.dir/temporal.cpp.o"
  "CMakeFiles/mmir_core.dir/temporal.cpp.o.d"
  "CMakeFiles/mmir_core.dir/texture_search.cpp.o"
  "CMakeFiles/mmir_core.dir/texture_search.cpp.o.d"
  "CMakeFiles/mmir_core.dir/workflow.cpp.o"
  "CMakeFiles/mmir_core.dir/workflow.cpp.o.d"
  "libmmir_core.a"
  "libmmir_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
