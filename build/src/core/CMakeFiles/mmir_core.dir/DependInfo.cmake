
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/mmir_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/mmir_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/progressive_exec.cpp" "src/core/CMakeFiles/mmir_core.dir/progressive_exec.cpp.o" "gcc" "src/core/CMakeFiles/mmir_core.dir/progressive_exec.cpp.o.d"
  "/root/repo/src/core/raster_model.cpp" "src/core/CMakeFiles/mmir_core.dir/raster_model.cpp.o" "gcc" "src/core/CMakeFiles/mmir_core.dir/raster_model.cpp.o.d"
  "/root/repo/src/core/retrieval.cpp" "src/core/CMakeFiles/mmir_core.dir/retrieval.cpp.o" "gcc" "src/core/CMakeFiles/mmir_core.dir/retrieval.cpp.o.d"
  "/root/repo/src/core/temporal.cpp" "src/core/CMakeFiles/mmir_core.dir/temporal.cpp.o" "gcc" "src/core/CMakeFiles/mmir_core.dir/temporal.cpp.o.d"
  "/root/repo/src/core/texture_search.cpp" "src/core/CMakeFiles/mmir_core.dir/texture_search.cpp.o" "gcc" "src/core/CMakeFiles/mmir_core.dir/texture_search.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/core/CMakeFiles/mmir_core.dir/workflow.cpp.o" "gcc" "src/core/CMakeFiles/mmir_core.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmir_data.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/mmir_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/progressive/CMakeFiles/mmir_progressive.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mmir_index.dir/DependInfo.cmake"
  "/root/repo/build/src/linear/CMakeFiles/mmir_linear.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/mmir_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/bayes/CMakeFiles/mmir_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/sproc/CMakeFiles/mmir_sproc.dir/DependInfo.cmake"
  "/root/repo/build/src/knowledge/CMakeFiles/mmir_knowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mmir_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
