# Empty dependencies file for mmir_core.
# This may be replaced when dependencies are built.
