# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("data")
subdirs("archive")
subdirs("progressive")
subdirs("index")
subdirs("linear")
subdirs("fsm")
subdirs("bayes")
subdirs("sproc")
subdirs("knowledge")
subdirs("metrics")
subdirs("core")
