file(REMOVE_RECURSE
  "libmmir_index.a"
)
