
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/gram_index.cpp" "src/index/CMakeFiles/mmir_index.dir/gram_index.cpp.o" "gcc" "src/index/CMakeFiles/mmir_index.dir/gram_index.cpp.o.d"
  "/root/repo/src/index/hull2d.cpp" "src/index/CMakeFiles/mmir_index.dir/hull2d.cpp.o" "gcc" "src/index/CMakeFiles/mmir_index.dir/hull2d.cpp.o.d"
  "/root/repo/src/index/hull3d.cpp" "src/index/CMakeFiles/mmir_index.dir/hull3d.cpp.o" "gcc" "src/index/CMakeFiles/mmir_index.dir/hull3d.cpp.o.d"
  "/root/repo/src/index/kdtree.cpp" "src/index/CMakeFiles/mmir_index.dir/kdtree.cpp.o" "gcc" "src/index/CMakeFiles/mmir_index.dir/kdtree.cpp.o.d"
  "/root/repo/src/index/onion.cpp" "src/index/CMakeFiles/mmir_index.dir/onion.cpp.o" "gcc" "src/index/CMakeFiles/mmir_index.dir/onion.cpp.o.d"
  "/root/repo/src/index/rtree.cpp" "src/index/CMakeFiles/mmir_index.dir/rtree.cpp.o" "gcc" "src/index/CMakeFiles/mmir_index.dir/rtree.cpp.o.d"
  "/root/repo/src/index/seqscan.cpp" "src/index/CMakeFiles/mmir_index.dir/seqscan.cpp.o" "gcc" "src/index/CMakeFiles/mmir_index.dir/seqscan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmir_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
