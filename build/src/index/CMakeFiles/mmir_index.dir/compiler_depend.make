# Empty compiler generated dependencies file for mmir_index.
# This may be replaced when dependencies are built.
