file(REMOVE_RECURSE
  "CMakeFiles/mmir_index.dir/gram_index.cpp.o"
  "CMakeFiles/mmir_index.dir/gram_index.cpp.o.d"
  "CMakeFiles/mmir_index.dir/hull2d.cpp.o"
  "CMakeFiles/mmir_index.dir/hull2d.cpp.o.d"
  "CMakeFiles/mmir_index.dir/hull3d.cpp.o"
  "CMakeFiles/mmir_index.dir/hull3d.cpp.o.d"
  "CMakeFiles/mmir_index.dir/kdtree.cpp.o"
  "CMakeFiles/mmir_index.dir/kdtree.cpp.o.d"
  "CMakeFiles/mmir_index.dir/onion.cpp.o"
  "CMakeFiles/mmir_index.dir/onion.cpp.o.d"
  "CMakeFiles/mmir_index.dir/rtree.cpp.o"
  "CMakeFiles/mmir_index.dir/rtree.cpp.o.d"
  "CMakeFiles/mmir_index.dir/seqscan.cpp.o"
  "CMakeFiles/mmir_index.dir/seqscan.cpp.o.d"
  "libmmir_index.a"
  "libmmir_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
