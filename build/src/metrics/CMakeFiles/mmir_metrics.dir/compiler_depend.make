# Empty compiler generated dependencies file for mmir_metrics.
# This may be replaced when dependencies are built.
