file(REMOVE_RECURSE
  "libmmir_metrics.a"
)
