file(REMOVE_RECURSE
  "CMakeFiles/mmir_metrics.dir/accuracy.cpp.o"
  "CMakeFiles/mmir_metrics.dir/accuracy.cpp.o.d"
  "CMakeFiles/mmir_metrics.dir/efficiency.cpp.o"
  "CMakeFiles/mmir_metrics.dir/efficiency.cpp.o.d"
  "libmmir_metrics.a"
  "libmmir_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
