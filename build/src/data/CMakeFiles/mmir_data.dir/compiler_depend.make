# Empty compiler generated dependencies file for mmir_data.
# This may be replaced when dependencies are built.
