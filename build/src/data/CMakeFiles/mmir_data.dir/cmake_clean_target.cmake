file(REMOVE_RECURSE
  "libmmir_data.a"
)
