
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/events.cpp" "src/data/CMakeFiles/mmir_data.dir/events.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/events.cpp.o.d"
  "/root/repo/src/data/grid.cpp" "src/data/CMakeFiles/mmir_data.dir/grid.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/grid.cpp.o.d"
  "/root/repo/src/data/scene.cpp" "src/data/CMakeFiles/mmir_data.dir/scene.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/scene.cpp.o.d"
  "/root/repo/src/data/scene_series.cpp" "src/data/CMakeFiles/mmir_data.dir/scene_series.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/scene_series.cpp.o.d"
  "/root/repo/src/data/terrain.cpp" "src/data/CMakeFiles/mmir_data.dir/terrain.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/terrain.cpp.o.d"
  "/root/repo/src/data/tuples.cpp" "src/data/CMakeFiles/mmir_data.dir/tuples.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/tuples.cpp.o.d"
  "/root/repo/src/data/weather.cpp" "src/data/CMakeFiles/mmir_data.dir/weather.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/weather.cpp.o.d"
  "/root/repo/src/data/welllog.cpp" "src/data/CMakeFiles/mmir_data.dir/welllog.cpp.o" "gcc" "src/data/CMakeFiles/mmir_data.dir/welllog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
