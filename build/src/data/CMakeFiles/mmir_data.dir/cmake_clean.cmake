file(REMOVE_RECURSE
  "CMakeFiles/mmir_data.dir/events.cpp.o"
  "CMakeFiles/mmir_data.dir/events.cpp.o.d"
  "CMakeFiles/mmir_data.dir/grid.cpp.o"
  "CMakeFiles/mmir_data.dir/grid.cpp.o.d"
  "CMakeFiles/mmir_data.dir/scene.cpp.o"
  "CMakeFiles/mmir_data.dir/scene.cpp.o.d"
  "CMakeFiles/mmir_data.dir/scene_series.cpp.o"
  "CMakeFiles/mmir_data.dir/scene_series.cpp.o.d"
  "CMakeFiles/mmir_data.dir/terrain.cpp.o"
  "CMakeFiles/mmir_data.dir/terrain.cpp.o.d"
  "CMakeFiles/mmir_data.dir/tuples.cpp.o"
  "CMakeFiles/mmir_data.dir/tuples.cpp.o.d"
  "CMakeFiles/mmir_data.dir/weather.cpp.o"
  "CMakeFiles/mmir_data.dir/weather.cpp.o.d"
  "CMakeFiles/mmir_data.dir/welllog.cpp.o"
  "CMakeFiles/mmir_data.dir/welllog.cpp.o.d"
  "libmmir_data.a"
  "libmmir_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
