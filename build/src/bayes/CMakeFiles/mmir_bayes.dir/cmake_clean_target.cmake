file(REMOVE_RECURSE
  "libmmir_bayes.a"
)
