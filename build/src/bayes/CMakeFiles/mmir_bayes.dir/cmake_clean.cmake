file(REMOVE_RECURSE
  "CMakeFiles/mmir_bayes.dir/bayesnet.cpp.o"
  "CMakeFiles/mmir_bayes.dir/bayesnet.cpp.o.d"
  "CMakeFiles/mmir_bayes.dir/fuzzy.cpp.o"
  "CMakeFiles/mmir_bayes.dir/fuzzy.cpp.o.d"
  "libmmir_bayes.a"
  "libmmir_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
