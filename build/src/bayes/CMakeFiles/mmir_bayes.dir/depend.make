# Empty dependencies file for mmir_bayes.
# This may be replaced when dependencies are built.
