
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sproc/brute.cpp" "src/sproc/CMakeFiles/mmir_sproc.dir/brute.cpp.o" "gcc" "src/sproc/CMakeFiles/mmir_sproc.dir/brute.cpp.o.d"
  "/root/repo/src/sproc/fast_sproc.cpp" "src/sproc/CMakeFiles/mmir_sproc.dir/fast_sproc.cpp.o" "gcc" "src/sproc/CMakeFiles/mmir_sproc.dir/fast_sproc.cpp.o.d"
  "/root/repo/src/sproc/query.cpp" "src/sproc/CMakeFiles/mmir_sproc.dir/query.cpp.o" "gcc" "src/sproc/CMakeFiles/mmir_sproc.dir/query.cpp.o.d"
  "/root/repo/src/sproc/sproc.cpp" "src/sproc/CMakeFiles/mmir_sproc.dir/sproc.cpp.o" "gcc" "src/sproc/CMakeFiles/mmir_sproc.dir/sproc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
