# Empty dependencies file for mmir_sproc.
# This may be replaced when dependencies are built.
