file(REMOVE_RECURSE
  "libmmir_sproc.a"
)
