file(REMOVE_RECURSE
  "CMakeFiles/mmir_sproc.dir/brute.cpp.o"
  "CMakeFiles/mmir_sproc.dir/brute.cpp.o.d"
  "CMakeFiles/mmir_sproc.dir/fast_sproc.cpp.o"
  "CMakeFiles/mmir_sproc.dir/fast_sproc.cpp.o.d"
  "CMakeFiles/mmir_sproc.dir/query.cpp.o"
  "CMakeFiles/mmir_sproc.dir/query.cpp.o.d"
  "CMakeFiles/mmir_sproc.dir/sproc.cpp.o"
  "CMakeFiles/mmir_sproc.dir/sproc.cpp.o.d"
  "libmmir_sproc.a"
  "libmmir_sproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_sproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
