file(REMOVE_RECURSE
  "libmmir_archive.a"
)
