file(REMOVE_RECURSE
  "CMakeFiles/mmir_archive.dir/catalog.cpp.o"
  "CMakeFiles/mmir_archive.dir/catalog.cpp.o.d"
  "CMakeFiles/mmir_archive.dir/io.cpp.o"
  "CMakeFiles/mmir_archive.dir/io.cpp.o.d"
  "CMakeFiles/mmir_archive.dir/tiled.cpp.o"
  "CMakeFiles/mmir_archive.dir/tiled.cpp.o.d"
  "libmmir_archive.a"
  "libmmir_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
