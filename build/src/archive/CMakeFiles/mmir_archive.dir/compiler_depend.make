# Empty compiler generated dependencies file for mmir_archive.
# This may be replaced when dependencies are built.
