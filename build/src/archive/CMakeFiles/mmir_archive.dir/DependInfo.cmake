
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/archive/catalog.cpp" "src/archive/CMakeFiles/mmir_archive.dir/catalog.cpp.o" "gcc" "src/archive/CMakeFiles/mmir_archive.dir/catalog.cpp.o.d"
  "/root/repo/src/archive/io.cpp" "src/archive/CMakeFiles/mmir_archive.dir/io.cpp.o" "gcc" "src/archive/CMakeFiles/mmir_archive.dir/io.cpp.o.d"
  "/root/repo/src/archive/tiled.cpp" "src/archive/CMakeFiles/mmir_archive.dir/tiled.cpp.o" "gcc" "src/archive/CMakeFiles/mmir_archive.dir/tiled.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmir_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
