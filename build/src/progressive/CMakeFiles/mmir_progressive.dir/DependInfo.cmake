
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/progressive/features.cpp" "src/progressive/CMakeFiles/mmir_progressive.dir/features.cpp.o" "gcc" "src/progressive/CMakeFiles/mmir_progressive.dir/features.cpp.o.d"
  "/root/repo/src/progressive/pyramid.cpp" "src/progressive/CMakeFiles/mmir_progressive.dir/pyramid.cpp.o" "gcc" "src/progressive/CMakeFiles/mmir_progressive.dir/pyramid.cpp.o.d"
  "/root/repo/src/progressive/regions.cpp" "src/progressive/CMakeFiles/mmir_progressive.dir/regions.cpp.o" "gcc" "src/progressive/CMakeFiles/mmir_progressive.dir/regions.cpp.o.d"
  "/root/repo/src/progressive/wavelet.cpp" "src/progressive/CMakeFiles/mmir_progressive.dir/wavelet.cpp.o" "gcc" "src/progressive/CMakeFiles/mmir_progressive.dir/wavelet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmir_data.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/mmir_archive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
