file(REMOVE_RECURSE
  "CMakeFiles/mmir_progressive.dir/features.cpp.o"
  "CMakeFiles/mmir_progressive.dir/features.cpp.o.d"
  "CMakeFiles/mmir_progressive.dir/pyramid.cpp.o"
  "CMakeFiles/mmir_progressive.dir/pyramid.cpp.o.d"
  "CMakeFiles/mmir_progressive.dir/regions.cpp.o"
  "CMakeFiles/mmir_progressive.dir/regions.cpp.o.d"
  "CMakeFiles/mmir_progressive.dir/wavelet.cpp.o"
  "CMakeFiles/mmir_progressive.dir/wavelet.cpp.o.d"
  "libmmir_progressive.a"
  "libmmir_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmir_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
