file(REMOVE_RECURSE
  "libmmir_progressive.a"
)
