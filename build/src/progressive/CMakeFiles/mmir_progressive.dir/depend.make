# Empty dependencies file for mmir_progressive.
# This may be replaced when dependencies are built.
