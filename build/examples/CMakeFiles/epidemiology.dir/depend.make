# Empty dependencies file for epidemiology.
# This may be replaced when dependencies are built.
