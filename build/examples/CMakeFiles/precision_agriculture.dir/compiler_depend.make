# Empty compiler generated dependencies file for precision_agriculture.
# This may be replaced when dependencies are built.
