file(REMOVE_RECURSE
  "CMakeFiles/precision_agriculture.dir/precision_agriculture.cpp.o"
  "CMakeFiles/precision_agriculture.dir/precision_agriculture.cpp.o.d"
  "precision_agriculture"
  "precision_agriculture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precision_agriculture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
