
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/credit_scoring.cpp" "examples/CMakeFiles/credit_scoring.dir/credit_scoring.cpp.o" "gcc" "examples/CMakeFiles/credit_scoring.dir/credit_scoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/progressive/CMakeFiles/mmir_progressive.dir/DependInfo.cmake"
  "/root/repo/build/src/archive/CMakeFiles/mmir_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/linear/CMakeFiles/mmir_linear.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/mmir_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mmir_index.dir/DependInfo.cmake"
  "/root/repo/build/src/knowledge/CMakeFiles/mmir_knowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/bayes/CMakeFiles/mmir_bayes.dir/DependInfo.cmake"
  "/root/repo/build/src/sproc/CMakeFiles/mmir_sproc.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mmir_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mmir_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmir_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
