# Empty compiler generated dependencies file for fire_ants.
# This may be replaced when dependencies are built.
