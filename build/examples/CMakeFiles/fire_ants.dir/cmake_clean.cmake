file(REMOVE_RECURSE
  "CMakeFiles/fire_ants.dir/fire_ants.cpp.o"
  "CMakeFiles/fire_ants.dir/fire_ants.cpp.o.d"
  "fire_ants"
  "fire_ants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fire_ants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
