# Empty compiler generated dependencies file for geology.
# This may be replaced when dependencies are built.
