file(REMOVE_RECURSE
  "CMakeFiles/geology.dir/geology.cpp.o"
  "CMakeFiles/geology.dir/geology.cpp.o.d"
  "geology"
  "geology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
