file(REMOVE_RECURSE
  "CMakeFiles/bench_fsm.dir/bench_fsm.cpp.o"
  "CMakeFiles/bench_fsm.dir/bench_fsm.cpp.o.d"
  "bench_fsm"
  "bench_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
