# Empty dependencies file for bench_progressive_classification.
# This may be replaced when dependencies are built.
