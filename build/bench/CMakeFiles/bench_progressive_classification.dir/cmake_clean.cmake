file(REMOVE_RECURSE
  "CMakeFiles/bench_progressive_classification.dir/bench_progressive_classification.cpp.o"
  "CMakeFiles/bench_progressive_classification.dir/bench_progressive_classification.cpp.o.d"
  "bench_progressive_classification"
  "bench_progressive_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progressive_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
