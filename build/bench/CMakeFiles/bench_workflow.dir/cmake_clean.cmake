file(REMOVE_RECURSE
  "CMakeFiles/bench_workflow.dir/bench_workflow.cpp.o"
  "CMakeFiles/bench_workflow.dir/bench_workflow.cpp.o.d"
  "bench_workflow"
  "bench_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
