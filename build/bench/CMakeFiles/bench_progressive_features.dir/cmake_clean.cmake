file(REMOVE_RECURSE
  "CMakeFiles/bench_progressive_features.dir/bench_progressive_features.cpp.o"
  "CMakeFiles/bench_progressive_features.dir/bench_progressive_features.cpp.o.d"
  "bench_progressive_features"
  "bench_progressive_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progressive_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
