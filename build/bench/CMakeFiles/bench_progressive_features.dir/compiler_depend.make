# Empty compiler generated dependencies file for bench_progressive_features.
# This may be replaced when dependencies are built.
