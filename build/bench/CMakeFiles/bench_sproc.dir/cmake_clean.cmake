file(REMOVE_RECURSE
  "CMakeFiles/bench_sproc.dir/bench_sproc.cpp.o"
  "CMakeFiles/bench_sproc.dir/bench_sproc.cpp.o.d"
  "bench_sproc"
  "bench_sproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
