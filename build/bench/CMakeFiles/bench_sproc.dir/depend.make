# Empty dependencies file for bench_sproc.
# This may be replaced when dependencies are built.
