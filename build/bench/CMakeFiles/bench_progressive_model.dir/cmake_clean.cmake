file(REMOVE_RECURSE
  "CMakeFiles/bench_progressive_model.dir/bench_progressive_model.cpp.o"
  "CMakeFiles/bench_progressive_model.dir/bench_progressive_model.cpp.o.d"
  "bench_progressive_model"
  "bench_progressive_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progressive_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
