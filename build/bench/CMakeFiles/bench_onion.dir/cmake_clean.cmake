file(REMOVE_RECURSE
  "CMakeFiles/bench_onion.dir/bench_onion.cpp.o"
  "CMakeFiles/bench_onion.dir/bench_onion.cpp.o.d"
  "bench_onion"
  "bench_onion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_onion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
