# Empty compiler generated dependencies file for bench_onion.
# This may be replaced when dependencies are built.
