# Empty compiler generated dependencies file for bench_knowledge.
# This may be replaced when dependencies are built.
