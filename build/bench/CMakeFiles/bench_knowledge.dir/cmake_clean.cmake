file(REMOVE_RECURSE
  "CMakeFiles/bench_knowledge.dir/bench_knowledge.cpp.o"
  "CMakeFiles/bench_knowledge.dir/bench_knowledge.cpp.o.d"
  "bench_knowledge"
  "bench_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
